package relation

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"svrdb/internal/codec"
	"svrdb/internal/storage/btree"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
)

// Kind enumerates the column types supported by the substrate.
type Kind uint8

const (
	// KindInt64 is a 64-bit signed integer column.
	KindInt64 Kind = iota + 1
	// KindFloat64 is a double-precision floating point column.
	KindFloat64
	// KindString is a variable-length string column (also used for text
	// documents; the text analyzer tokenizes it).
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt64:
		return "BIGINT"
	case KindFloat64:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Column describes one column of a schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema describes a table: an ordered list of columns, the first of which
// must be the INT64 primary key.
type Schema struct {
	Name    string
	Columns []Column
}

// ErrNoSuchColumn is returned when a column name is not part of a schema.
var ErrNoSuchColumn = errors.New("relation: no such column")

// ErrNotFound is wrapped into lookup errors for absent rows and absent
// tables; the wrapping error says which.
var ErrNotFound = errors.New("relation: not found")

// ErrDuplicateKey is returned when inserting a row whose primary key exists.
var ErrDuplicateKey = errors.New("relation: duplicate primary key")

// ErrIndexExists is returned by CreateIndex when the column already has a
// secondary index (EnsureIndex treats it as success).
var ErrIndexExists = errors.New("relation: index already exists")

// ColumnIndex returns the position of the named column.
func (s Schema) ColumnIndex(name string) (int, error) {
	for i, c := range s.Columns {
		if c.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: %q in table %q", ErrNoSuchColumn, name, s.Name)
}

// Validate checks the structural rules for a schema.
func (s Schema) Validate() error {
	if s.Name == "" {
		return errors.New("relation: schema must have a name")
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("relation: table %q has no columns", s.Name)
	}
	if s.Columns[0].Kind != KindInt64 {
		return fmt.Errorf("relation: table %q: first column %q must be the INT64 primary key", s.Name, s.Columns[0].Name)
	}
	seen := map[string]bool{}
	for _, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("relation: table %q has an unnamed column", s.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("relation: table %q has duplicate column %q", s.Name, c.Name)
		}
		seen[c.Name] = true
		switch c.Kind {
		case KindInt64, KindFloat64, KindString:
		default:
			return fmt.Errorf("relation: table %q column %q has invalid kind %d", s.Name, c.Name, c.Kind)
		}
	}
	return nil
}

// Value is a single typed cell.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
}

// Int returns an INT64 value.
func Int(v int64) Value { return Value{Kind: KindInt64, I: v} }

// Float returns a DOUBLE value.
func Float(v float64) Value { return Value{Kind: KindFloat64, F: v} }

// Str returns a VARCHAR value.
func Str(v string) Value { return Value{Kind: KindString, S: v} }

// AsFloat converts numeric values to float64 (strings convert to 0).
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt64:
		return float64(v.I)
	case KindFloat64:
		return v.F
	default:
		return 0
	}
}

// AsInt converts numeric values to int64 (strings convert to 0).
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KindInt64:
		return v.I
	case KindFloat64:
		return int64(v.F)
	default:
		return 0
	}
}

// String implements fmt.Stringer for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case KindInt64:
		return fmt.Sprintf("%d", v.I)
	case KindFloat64:
		return fmt.Sprintf("%g", v.F)
	case KindString:
		return v.S
	default:
		return "<nil>"
	}
}

// Row is an ordered tuple matching a schema.
type Row []Value

// EncodedRowSize reports the storage-encoding size of a row in bytes — the
// same figure Table.Bytes accumulates per row, exposed so quota admission
// checks can project a batch's byte delta before mutating anything.
func EncodedRowSize(r Row) int { return len(encodeRow(r)) }

// encodeRow serializes a row (excluding nothing; the PK is stored redundantly
// for simplicity).
func encodeRow(r Row) []byte {
	out := make([]byte, 0, 32)
	out = codec.PutUvarint(out, uint64(len(r)))
	for _, v := range r {
		out = append(out, byte(v.Kind))
		switch v.Kind {
		case KindInt64:
			out = codec.PutVarint(out, v.I)
		case KindFloat64:
			out = codec.PutFloat64(out, v.F)
		case KindString:
			out = codec.PutString(out, v.S)
		}
	}
	return out
}

func decodeRow(data []byte) (Row, error) {
	n, off, err := codec.Uvarint(data)
	if err != nil {
		return nil, err
	}
	row := make(Row, 0, n)
	for i := uint64(0); i < n; i++ {
		if off >= len(data) {
			return nil, fmt.Errorf("relation: truncated row at column %d", i)
		}
		kind := Kind(data[off])
		off++
		var v Value
		v.Kind = kind
		switch kind {
		case KindInt64:
			x, sz, err := codec.Varint(data[off:])
			if err != nil {
				return nil, err
			}
			v.I = x
			off += sz
		case KindFloat64:
			x, sz, err := codec.Float64(data[off:])
			if err != nil {
				return nil, err
			}
			v.F = x
			off += sz
		case KindString:
			s, sz, err := codec.String(data[off:])
			if err != nil {
				return nil, err
			}
			v.S = s
			off += sz
		default:
			return nil, fmt.Errorf("relation: unknown value kind %d", kind)
		}
		row = append(row, v)
	}
	return row, nil
}

// ChangeKind describes what happened to a row.
type ChangeKind uint8

const (
	// ChangeInsert indicates a new row was inserted.
	ChangeInsert ChangeKind = iota + 1
	// ChangeUpdate indicates an existing row was modified.
	ChangeUpdate
	// ChangeDelete indicates a row was removed.
	ChangeDelete
)

// Change is delivered to table listeners after a mutation commits.
type Change struct {
	Table string
	Kind  ChangeKind
	PK    int64
	// Old is nil for inserts; New is nil for deletes.
	Old Row
	New Row
}

// Listener receives change notifications.  Listeners are invoked
// synchronously after the mutation has been applied.
type Listener func(Change)

// ListenerHandle identifies a registered listener so it can be removed when
// its consumer (a dropped index, a disconnected change stream) goes away.
type ListenerHandle uint64

// Table stores rows of a single schema keyed by their primary key.
//
// A Table is safe for concurrent use: readers (Get, GetMany, Scan,
// LookupByColumn) may run from any number of goroutines, and the mutating
// operations (Insert, Update, Delete) serialize against each other and
// against readers through rowMu.  Change listeners are invoked after the
// mutation's locks are released, so a listener may freely read the table
// (the search engine's maintenance callbacks do).  Scan and LookupByColumn
// visitors run under the read lock and must not mutate the table.
type Table struct {
	schema Schema
	tree   *btree.Tree

	// rowMu guards the row tree and the secondary index trees: readers
	// share it, mutations take it exclusively.
	rowMu sync.RWMutex
	// Notification ordering: each mutation draws a ticket (notifySeq) while
	// still holding rowMu, then delivers its change when notifyNext reaches
	// its ticket — so listeners observe changes in exactly the order the
	// mutations committed (an out-of-order content diff would diverge the
	// text indexes permanently).  Deliveries wait for their turn holding no
	// lock, so listeners may freely read the table; they must not mutate
	// it (a mutating listener would wait forever for its own turn).
	notifySeq  uint64 // next ticket to hand out; guarded by rowMu
	notifyMu   sync.Mutex
	notifyCond sync.Cond // signals notifyNext advancing; uses notifyMu
	notifyNext uint64    // ticket currently allowed to deliver; guarded by notifyMu

	mu         sync.RWMutex
	secondary  map[string]*btree.Tree // column name -> (value, pk) index
	listeners  []registeredListener
	listenerID uint64
	pool       *buffer.Pool
	rowCount   int
	rowBytes   int64
}

// registeredListener pairs a listener with its removal handle; the slice
// preserves registration order, which notification delivery relies on.
type registeredListener struct {
	id ListenerHandle
	fn Listener
}

// NewTable creates an empty table for schema, storing rows in B+-trees over
// the supplied buffer pool.
func NewTable(pool *buffer.Pool, schema Schema) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	tree, err := btree.New(pool)
	if err != nil {
		return nil, err
	}
	t := &Table{
		schema:    schema,
		tree:      tree,
		secondary: map[string]*btree.Tree{},
		pool:      pool,
	}
	t.notifyCond.L = &t.notifyMu
	return t, nil
}

// Schema returns the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// Name returns the table name.
func (t *Table) Name() string { return t.schema.Name }

// Len reports the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rowCount
}

// Bytes reports the encoded size of every live row, the figure byte quotas
// meter.  Tables restored from pre-quota catalogs start at zero and account
// from their first post-restore mutation.
func (t *Table) Bytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rowBytes
}

// OnChange registers a listener for mutations on this table and returns a
// handle that RemoveListener accepts.
func (t *Table) OnChange(l Listener) ListenerHandle {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.listenerID++
	h := ListenerHandle(t.listenerID)
	t.listeners = append(t.listeners, registeredListener{id: h, fn: l})
	return h
}

// RemoveListener detaches a listener registered with OnChange.  A mutation
// already past its registration snapshot may still deliver one final change
// after RemoveListener returns; removing an unknown handle is a no-op.
func (t *Table) RemoveListener(h ListenerHandle) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, rl := range t.listeners {
		if rl.id == h {
			t.listeners = append(t.listeners[:i], t.listeners[i+1:]...)
			return
		}
	}
}

func (t *Table) notify(c Change) {
	t.mu.RLock()
	listeners := append([]registeredListener(nil), t.listeners...)
	t.mu.RUnlock()
	for _, l := range listeners {
		l.fn(c)
	}
}

func pkKey(pk int64) []byte {
	return codec.PutOrderedUint64(nil, uint64(pk))
}

// validateRow checks that the row matches the schema.
func (t *Table) validateRow(row Row) error {
	if len(row) != len(t.schema.Columns) {
		return fmt.Errorf("relation: table %q expects %d columns, got %d", t.schema.Name, len(t.schema.Columns), len(row))
	}
	for i, v := range row {
		if v.Kind != t.schema.Columns[i].Kind {
			return fmt.Errorf("relation: table %q column %q expects %s, got %s",
				t.schema.Name, t.schema.Columns[i].Name, t.schema.Columns[i].Kind, v.Kind)
		}
	}
	return nil
}

// commitAndNotify is the tail of every mutation: called with rowMu held, it
// draws the next notification ticket, releases rowMu, waits (holding no
// lock) until every earlier commit has delivered, delivers the change, and
// passes the turn on.
func (t *Table) commitAndNotify(c Change) {
	ticket := t.notifySeq
	t.notifySeq++
	t.rowMu.Unlock()

	t.notifyMu.Lock()
	for t.notifyNext != ticket {
		t.notifyCond.Wait()
	}
	t.notifyMu.Unlock()

	// Pass the turn on even if a listener panics — a wedged ticket would
	// block every later mutation on the table forever.
	defer func() {
		t.notifyMu.Lock()
		t.notifyNext++
		t.notifyCond.Broadcast()
		t.notifyMu.Unlock()
	}()
	t.notify(c)
}

// Insert adds a row.  The primary key must not already exist.
func (t *Table) Insert(row Row) error {
	if err := t.validateRow(row); err != nil {
		return err
	}
	pk := row[0].I
	t.rowMu.Lock()
	if err := t.insertLocked(pk, row); err != nil {
		t.rowMu.Unlock()
		return err
	}
	t.commitAndNotify(Change{Table: t.schema.Name, Kind: ChangeInsert, PK: pk, New: row})
	return nil
}

// insertLocked applies the insert; the caller holds rowMu.
func (t *Table) insertLocked(pk int64, row Row) error {
	key := pkKey(pk)
	if ok, err := t.tree.Has(key); err != nil {
		return err
	} else if ok {
		return fmt.Errorf("%w: %d in table %q", ErrDuplicateKey, pk, t.schema.Name)
	}
	encoded := encodeRow(row)
	if err := t.tree.Put(key, encoded); err != nil {
		return err
	}
	t.mu.Lock()
	t.rowCount++
	t.rowBytes += int64(len(encoded))
	t.mu.Unlock()
	return t.indexRow(row, true)
}

// Get returns the row with the given primary key.
func (t *Table) Get(pk int64) (Row, error) {
	t.rowMu.RLock()
	defer t.rowMu.RUnlock()
	return t.getLocked(pk)
}

// getLocked is Get for callers already holding rowMu (either side).
func (t *Table) getLocked(pk int64) (Row, error) {
	data, ok, err := t.tree.Get(pkKey(pk))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: pk %d in table %q", ErrNotFound, pk, t.schema.Name)
	}
	return decodeRow(data)
}

// GetMany returns the rows for a batch of primary keys, aligned with pks; a
// missing key yields a nil Row instead of an error.  The probes are issued
// in ascending key order so that a ranked result set joins back to the base
// table with B+-tree page locality, then restored to the requested order.
func (t *Table) GetMany(pks []int64) ([]Row, error) {
	t.rowMu.RLock()
	defer t.rowMu.RUnlock()
	rows := make([]Row, len(pks))
	order := make([]int, len(pks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return pks[order[a]] < pks[order[b]] })
	for _, i := range order {
		data, ok, err := t.tree.Get(pkKey(pks[i]))
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		row, err := decodeRow(data)
		if err != nil {
			return nil, err
		}
		rows[i] = row
	}
	return rows, nil
}

// Update replaces the named columns of the row with the given primary key.
func (t *Table) Update(pk int64, updates map[string]Value) error {
	t.rowMu.Lock()
	old, updated, err := t.updateLocked(pk, updates)
	if err != nil {
		t.rowMu.Unlock()
		return err
	}
	t.commitAndNotify(Change{Table: t.schema.Name, Kind: ChangeUpdate, PK: pk, Old: old, New: updated})
	return nil
}

// updateLocked applies the read-modify-write; the caller holds rowMu.
func (t *Table) updateLocked(pk int64, updates map[string]Value) (old, updated Row, err error) {
	old, err = t.getLocked(pk)
	if err != nil {
		return nil, nil, err
	}
	updated = append(Row(nil), old...)
	for name, v := range updates {
		idx, err := t.schema.ColumnIndex(name)
		if err != nil {
			return nil, nil, err
		}
		if idx == 0 {
			return nil, nil, fmt.Errorf("relation: table %q: primary key column cannot be updated", t.schema.Name)
		}
		if v.Kind != t.schema.Columns[idx].Kind {
			return nil, nil, fmt.Errorf("relation: table %q column %q expects %s, got %s",
				t.schema.Name, name, t.schema.Columns[idx].Kind, v.Kind)
		}
		updated[idx] = v
	}
	if err := t.unindexRow(old); err != nil {
		return nil, nil, err
	}
	encoded := encodeRow(updated)
	if err := t.tree.Put(pkKey(pk), encoded); err != nil {
		return nil, nil, err
	}
	if err := t.indexRow(updated, false); err != nil {
		return nil, nil, err
	}
	t.mu.Lock()
	t.rowBytes += int64(len(encoded)) - int64(len(encodeRow(old)))
	t.mu.Unlock()
	return old, updated, nil
}

// Delete removes the row with the given primary key.
func (t *Table) Delete(pk int64) error {
	t.rowMu.Lock()
	old, err := t.deleteLocked(pk)
	if err != nil {
		t.rowMu.Unlock()
		return err
	}
	t.commitAndNotify(Change{Table: t.schema.Name, Kind: ChangeDelete, PK: pk, Old: old})
	return nil
}

// deleteLocked applies the delete; the caller holds rowMu.
func (t *Table) deleteLocked(pk int64) (Row, error) {
	old, err := t.getLocked(pk)
	if err != nil {
		return nil, err
	}
	if err := t.unindexRow(old); err != nil {
		return nil, err
	}
	if _, err := t.tree.Delete(pkKey(pk)); err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.rowCount--
	t.rowBytes -= int64(len(encodeRow(old)))
	t.mu.Unlock()
	return old, nil
}

// Scan visits every row in primary-key order.  Returning false from the
// visitor stops the scan.  The visitor runs under the table read lock and
// must not mutate the table.
func (t *Table) Scan(visit func(Row) bool) error {
	t.rowMu.RLock()
	defer t.rowMu.RUnlock()
	var decodeErr error
	err := t.tree.Ascend(func(k, v []byte) bool {
		row, err := decodeRow(v)
		if err != nil {
			decodeErr = err
			return false
		}
		return visit(row)
	})
	if decodeErr != nil {
		return decodeErr
	}
	return err
}

// --- secondary indexes -------------------------------------------------------

// HasIndex reports whether a secondary index exists on the named column.
func (t *Table) HasIndex(column string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.secondary[column]
	return ok
}

// EnsureIndex creates a secondary index on the named column if one does not
// already exist.  It is safe to call concurrently: when two callers race,
// the loser's duplicate creation is treated as success.
func (t *Table) EnsureIndex(column string) error {
	if t.HasIndex(column) {
		return nil
	}
	if err := t.CreateIndex(column); err != nil && !errors.Is(err, ErrIndexExists) {
		return err
	}
	return nil
}

// CreateIndex builds a secondary index on the named column.  Existing rows
// are indexed immediately; subsequent mutations maintain the index.  The
// whole build runs under the exclusive row lock and the tree is published
// into t.secondary only after the backfill succeeds, so HasIndex and
// LookupByColumn never observe a half-built (or failed-and-discarded)
// index, and no mutation can slip between backfill and publish.
func (t *Table) CreateIndex(column string) error {
	idx, err := t.schema.ColumnIndex(column)
	if err != nil {
		return err
	}
	t.rowMu.Lock()
	defer t.rowMu.Unlock()
	t.mu.RLock()
	_, exists := t.secondary[column]
	t.mu.RUnlock()
	if exists {
		return fmt.Errorf("%w: on %q.%q", ErrIndexExists, t.schema.Name, column)
	}
	tree, err := btree.New(t.pool)
	if err != nil {
		return err
	}
	var fillErr error
	err = t.tree.Ascend(func(k, v []byte) bool {
		row, err := decodeRow(v)
		if err != nil {
			fillErr = err
			return false
		}
		if err := tree.Put(secondaryKey(row[idx], row[0].I), nil); err != nil {
			fillErr = err
			return false
		}
		return true
	})
	if fillErr == nil {
		fillErr = err
	}
	if fillErr != nil {
		return fillErr
	}
	t.mu.Lock()
	t.secondary[column] = tree
	t.mu.Unlock()
	return nil
}

// secondaryKey builds an order-preserving (value, pk) composite key.
func secondaryKey(v Value, pk int64) []byte {
	key := make([]byte, 0, 24)
	switch v.Kind {
	case KindInt64:
		key = append(key, byte(KindInt64))
		key = codec.PutOrderedUint64(key, uint64(v.I)+(1<<63)) // shift so negatives sort first
	case KindFloat64:
		key = append(key, byte(KindFloat64))
		key = codec.PutOrderedFloat64(key, v.F)
	case KindString:
		key = append(key, byte(KindString))
		key = codec.PutOrderedString(key, v.S)
	}
	return codec.PutOrderedUint64(key, uint64(pk))
}

func (t *Table) indexRow(row Row, _ bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for col, tree := range t.secondary {
		idx, err := t.schema.ColumnIndex(col)
		if err != nil {
			return err
		}
		if err := tree.Put(secondaryKey(row[idx], row[0].I), nil); err != nil {
			return err
		}
	}
	return nil
}

func (t *Table) unindexRow(row Row) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for col, tree := range t.secondary {
		idx, err := t.schema.ColumnIndex(col)
		if err != nil {
			return err
		}
		if _, err := tree.Delete(secondaryKey(row[idx], row[0].I)); err != nil {
			return err
		}
	}
	return nil
}

// LookupByColumn returns the rows whose named (indexed) column equals value.
// The column must have a secondary index.  The visitor runs under the table
// read lock and must not mutate the table.
func (t *Table) LookupByColumn(column string, value Value, visit func(Row) bool) error {
	t.mu.RLock()
	tree, ok := t.secondary[column]
	t.mu.RUnlock()
	if !ok {
		return fmt.Errorf("relation: no index on %q.%q", t.schema.Name, column)
	}
	t.rowMu.RLock()
	defer t.rowMu.RUnlock()
	prefix := secondaryKey(value, 0)
	// Strip the trailing pk portion (last 8 bytes) to form the value prefix.
	prefix = prefix[:len(prefix)-8]
	var innerErr error
	err := tree.AscendPrefix(prefix, func(k, v []byte) bool {
		pkBytes := k[len(k)-8:]
		pk, _, err := codec.OrderedUint64(pkBytes)
		if err != nil {
			innerErr = err
			return false
		}
		row, err := t.getLocked(int64(pk))
		if err != nil {
			innerErr = err
			return false
		}
		return visit(row)
	})
	if innerErr != nil {
		return innerErr
	}
	return err
}

// --- catalog -----------------------------------------------------------------

// DB is a named collection of tables sharing one buffer pool.
type DB struct {
	mu     sync.RWMutex
	pool   *buffer.Pool
	tables map[string]*Table
}

// NewDB creates an empty database over the given pool.
func NewDB(pool *buffer.Pool) *DB {
	return &DB{pool: pool, tables: map[string]*Table{}}
}

// Pool returns the buffer pool used by the database.
func (db *DB) Pool() *buffer.Pool { return db.pool }

// CreateTable creates a table with the given schema.
func (db *DB) CreateTable(schema Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[schema.Name]; exists {
		return nil, fmt.Errorf("relation: table %q already exists", schema.Name)
	}
	t, err := NewTable(db.pool, schema)
	if err != nil {
		return nil, err
	}
	db.tables[schema.Name] = t
	return t, nil
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: no table named %q", ErrNotFound, name)
	}
	return t, nil
}

// TableNames lists the tables in sorted order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TreeState records one B+-tree's checkpoint anchor: its root page and key
// count, everything btree.Open needs to reattach.
type TreeState struct {
	Root pagefile.PageID
	Size int
}

// TableState is the serializable snapshot of a table's navigational state.
// The rows themselves live in pages; this captures where the trees start.
type TableState struct {
	Schema    Schema
	Tree      TreeState
	Secondary map[string]TreeState // column name -> secondary index tree
	// Bytes is the encoded-row footprint at checkpoint time, restored so
	// byte quotas keep metering across restarts.  Catalogs written before
	// the field existed decode it as zero.
	Bytes int64
}

// State snapshots the table for a checkpoint.  The caller must hold the
// engine's batch rung so no mutation is mid-flight.
func (t *Table) State() TableState {
	t.mu.RLock()
	defer t.mu.RUnlock()
	st := TableState{
		Schema: t.schema,
		Tree:   TreeState{Root: t.tree.RootPage(), Size: t.tree.Len()},
		Bytes:  t.rowBytes,
	}
	if len(t.secondary) > 0 {
		st.Secondary = make(map[string]TreeState, len(t.secondary))
		for col, tr := range t.secondary {
			st.Secondary[col] = TreeState{Root: tr.RootPage(), Size: tr.Len()}
		}
	}
	return st
}

// RestoreTable reattaches a table to its checkpointed trees.  The table is
// registered in the database under its schema name.
func (db *DB) RestoreTable(st TableState) (*Table, error) {
	if err := st.Schema.Validate(); err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[st.Schema.Name]; exists {
		return nil, fmt.Errorf("relation: table %q already exists", st.Schema.Name)
	}
	t := &Table{
		schema:    st.Schema,
		tree:      btree.Open(db.pool, st.Tree.Root, st.Tree.Size),
		secondary: map[string]*btree.Tree{},
		pool:      db.pool,
		rowCount:  st.Tree.Size,
		rowBytes:  st.Bytes,
	}
	for col, ts := range st.Secondary {
		if _, err := st.Schema.ColumnIndex(col); err != nil {
			return nil, err
		}
		t.secondary[col] = btree.Open(db.pool, ts.Root, ts.Size)
	}
	t.notifyCond.L = &t.notifyMu
	db.tables[st.Schema.Name] = t
	return t, nil
}
