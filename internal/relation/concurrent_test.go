package relation

import (
	"sync"
	"testing"

	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
)

// TestConcurrentUpdateNotificationOrder drives many goroutines updating the
// same row and asserts listeners observe the changes in commit order: every
// delivered change's Old value must equal the previous delivery's New value
// (out-of-order delivery would hand the text indexes a divergent content
// diff chain).  Readers run alongside to exercise the reader/writer path
// under -race.
func TestConcurrentUpdateNotificationOrder(t *testing.T) {
	pool := buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), 256)
	tbl, err := NewTable(pool, Schema{
		Name: "T",
		Columns: []Column{
			{Name: "id", Kind: KindInt64},
			{Name: "n", Kind: KindInt64},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Row{Int(1), Int(0)}); err != nil {
		t.Fatal(err)
	}

	var chain []Change // appended by the (serialized) listener
	tbl.OnChange(func(c Change) {
		chain = append(chain, c)
	})

	const writers, perW = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				row, err := tbl.Get(1)
				if err != nil {
					t.Error(err)
					return
				}
				if err := tbl.Update(1, map[string]Value{"n": Int(row[1].I + int64(w) + 1)}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Concurrent readers exercise Get/GetMany against the writers.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := tbl.GetMany([]int64{1}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if len(chain) != writers*perW {
		t.Fatalf("delivered %d changes, want %d", len(chain), writers*perW)
	}
	prev := int64(0)
	for i, c := range chain {
		if c.Old[1].I != prev {
			t.Fatalf("delivery %d out of commit order: Old.n = %d, want %d (previous delivery's New)", i, c.Old[1].I, prev)
		}
		prev = c.New[1].I
	}
	final, err := tbl.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if final[1].I != prev {
		t.Fatalf("table holds n=%d but last delivered New was %d", final[1].I, prev)
	}
}
