package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"svrdb/internal/postings"
)

// DocID aliases the index document identifier.
type DocID = postings.DocID

// Params describes a synthetic collection (Figure 6, first row).
type Params struct {
	// NumDocs is the number of documents.
	NumDocs int
	// TermsPerDoc is the number of tokens per document (the paper uses 2000).
	TermsPerDoc int
	// VocabSize is the number of distinct terms in the collection (the paper
	// uses 200000, roughly the size of English).
	VocabSize int
	// TermZipf is the Zipf parameter of term frequencies (0.1 in the paper).
	TermZipf float64
	// ScoreMax is the upper end of the score domain (100000 in the paper).
	ScoreMax float64
	// ScoreZipf is the Zipf parameter of the score distribution (0.75).
	ScoreZipf float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultParams returns the paper's parameters at a laptop-friendly scale.
//
// One deliberate deviation: the full-size collection (2000-token documents,
// 200 000-term vocabulary) gives a two-keyword "unselective" query a result
// set of a few percent of the collection, which is what lets the paper's
// top-k algorithms terminate early.  Shrinking documents and vocabulary with
// the paper's very flat Zipf(0.1) term distribution would make two-keyword
// conjunctions match almost nothing and every method degenerate to a full
// scan, so the scaled-down default uses a steeper (English-like) Zipf(1.0)
// term distribution to preserve the paper's query selectivities.  PaperParams
// keeps the published value.
func DefaultParams() Params {
	return Params{
		NumDocs:     8000,
		TermsPerDoc: 200,
		VocabSize:   20000,
		TermZipf:    1.0,
		ScoreMax:    100000,
		ScoreZipf:   0.75,
		Seed:        1,
	}
}

// PaperParams returns the full-size parameters from Figure 6.  Building this
// collection takes the better part of an hour and several GB of memory; the
// benchmark harness uses DefaultParams unless asked otherwise.
func PaperParams() Params {
	return Params{
		NumDocs:     50000,
		TermsPerDoc: 2000,
		VocabSize:   200000,
		TermZipf:    0.1,
		ScoreMax:    100000,
		ScoreZipf:   0.75,
		Seed:        1,
	}
}

// Scaled multiplies the collection size by f (document count and vocabulary;
// the tokens per document stay fixed so per-document update cost keeps its
// meaning).
func (p Params) Scaled(f float64) Params {
	if f <= 0 {
		return p
	}
	out := p
	out.NumDocs = max(1, int(float64(p.NumDocs)*f))
	out.VocabSize = max(16, int(float64(p.VocabSize)*f))
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Corpus is a generated document collection.  It implements index.DocSource.
type Corpus struct {
	params Params
	tokens [][]string
	scores []float64
	// termRank lists distinct terms ordered by descending collection
	// frequency (used to build query workloads).
	termRank []string
}

// Generate builds a synthetic corpus.
func Generate(p Params) *Corpus {
	rng := rand.New(rand.NewSource(p.Seed))
	vocab := make([]string, p.VocabSize)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("t%06d", i)
	}
	sampler := newZipfSampler(rng, p.TermZipf, p.VocabSize)

	c := &Corpus{params: p, tokens: make([][]string, p.NumDocs), scores: make([]float64, p.NumDocs)}
	termFreq := make([]int64, p.VocabSize)
	for d := 0; d < p.NumDocs; d++ {
		doc := make([]string, p.TermsPerDoc)
		for i := range doc {
			t := sampler.next()
			doc[i] = vocab[t]
			termFreq[t]++
		}
		c.tokens[d] = doc
	}

	// Scores: Zipf over a random permutation of the documents, scaled to
	// [0, ScoreMax]: the rank-1 document gets ScoreMax, the rank-r document
	// gets ScoreMax / r^ScoreZipf.
	perm := rng.Perm(p.NumDocs)
	for rank, d := range perm {
		c.scores[d] = p.ScoreMax / math.Pow(float64(rank+1), p.ScoreZipf)
	}

	// Rank terms by collection frequency for the query workloads.
	type tf struct {
		term string
		n    int64
	}
	ranked := make([]tf, 0, p.VocabSize)
	for i, n := range termFreq {
		if n > 0 {
			ranked = append(ranked, tf{term: vocab[i], n: n})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].term < ranked[j].term
	})
	c.termRank = make([]string, len(ranked))
	for i, r := range ranked {
		c.termRank[i] = r.term
	}
	return c
}

// Params returns the parameters the corpus was generated with.
func (c *Corpus) Params() Params { return c.params }

// NumDocs implements index.DocSource.
func (c *Corpus) NumDocs() int { return len(c.tokens) }

// ForEach implements index.DocSource.  Document IDs are 1-based.
func (c *Corpus) ForEach(fn func(doc DocID, tokens []string) error) error {
	for i, tokens := range c.tokens {
		if err := fn(DocID(i+1), tokens); err != nil {
			return err
		}
	}
	return nil
}

// Tokens implements index.DocSource.
func (c *Corpus) Tokens(doc DocID) ([]string, error) {
	i := int(doc) - 1
	if i < 0 || i >= len(c.tokens) {
		return nil, fmt.Errorf("workload: no document %d", doc)
	}
	return c.tokens[i], nil
}

// Score returns the build-time score of a document.
func (c *Corpus) Score(doc DocID) float64 {
	i := int(doc) - 1
	if i < 0 || i >= len(c.scores) {
		return 0
	}
	return c.scores[i]
}

// ScoreFunc adapts Score to the index build signature.
func (c *Corpus) ScoreFunc() func(DocID) float64 {
	return func(doc DocID) float64 { return c.Score(doc) }
}

// DistinctTermCount reports how many distinct terms actually occur.
func (c *Corpus) DistinctTermCount() int { return len(c.termRank) }

// --- Zipf sampling --------------------------------------------------------------

// zipfSampler draws ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s.  The standard library's rand.Zipf requires s > 1, but the
// paper uses s = 0.1 for terms and 0.75 for scores, so a cumulative-table
// sampler is used instead.
type zipfSampler struct {
	rng *rand.Rand
	cum []float64
}

func newZipfSampler(rng *rand.Rand, s float64, n int) *zipfSampler {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &zipfSampler{rng: rng, cum: cum}
}

func (z *zipfSampler) next() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cum, u)
}

// --- score update workload -------------------------------------------------------

// FocusMode controls the direction of focus-set updates (Figure 6's "focus
// increase update" parameter).
type FocusMode int

const (
	// FocusIncrease makes every focus-set update strictly increasing (the
	// default: newly popular documents).
	FocusIncrease FocusMode = iota
	// FocusDecrease makes every focus-set update strictly decreasing.
	FocusDecrease
	// FocusMixed increases scores for half the focus set and decreases them
	// for the other half.
	FocusMixed
)

// UpdateParams describes a score-update trace (Figure 6, rows 2-5).
type UpdateParams struct {
	// NumUpdates is the number of score updates to generate.
	NumUpdates int
	// MeanStep is the mean magnitude of an update; sizes are uniform in
	// [0, 2·MeanStep] (the paper's "mean update size").
	MeanStep float64
	// FocusSetFraction is the fraction of the collection in the focus set.
	FocusSetFraction float64
	// FocusUpdateFraction is the fraction of updates that target the focus
	// set.
	FocusUpdateFraction float64
	// FocusMode controls the direction of focus-set updates.
	FocusMode FocusMode
	// RankZipf is the Zipf parameter used to pick non-focus update targets by
	// score rank (higher-scored documents are updated more often, as observed
	// in the Internet Archive logs).
	RankZipf float64
	// Seed makes the trace deterministic.
	Seed int64
}

// DefaultUpdateParams mirrors the paper's default update workload.
func DefaultUpdateParams() UpdateParams {
	return UpdateParams{
		NumUpdates:          10000,
		MeanStep:            100,
		FocusSetFraction:    0.01,
		FocusUpdateFraction: 0.2,
		FocusMode:           FocusIncrease,
		RankZipf:            0.75,
		Seed:                2,
	}
}

// ScoreUpdate is one entry of an update trace.
type ScoreUpdate struct {
	Doc      DocID
	NewScore float64
}

// GenerateUpdates produces a deterministic score-update trace over the
// corpus.  The trace tracks the evolving scores so that consecutive updates
// to the same document compose the way a live system would see them.
func GenerateUpdates(c *Corpus, p UpdateParams) []ScoreUpdate {
	rng := rand.New(rand.NewSource(p.Seed))
	n := c.NumDocs()
	if n == 0 || p.NumUpdates <= 0 {
		return nil
	}

	// Rank documents by initial score so that rank-based Zipf targeting
	// prefers popular documents.
	rankOrder := make([]int, n)
	for i := range rankOrder {
		rankOrder[i] = i
	}
	sort.Slice(rankOrder, func(a, b int) bool { return c.scores[rankOrder[a]] > c.scores[rankOrder[b]] })
	targetSampler := newZipfSampler(rng, p.RankZipf, n)

	// Focus set: a random subset of documents that receive directed updates.
	focusSize := int(float64(n) * p.FocusSetFraction)
	if focusSize < 1 {
		focusSize = 1
	}
	focusDocs := rng.Perm(n)[:focusSize]

	current := append([]float64(nil), c.scores...)
	updates := make([]ScoreUpdate, 0, p.NumUpdates)
	for u := 0; u < p.NumUpdates; u++ {
		var idx int
		focus := rng.Float64() < p.FocusUpdateFraction
		if focus {
			idx = focusDocs[rng.Intn(len(focusDocs))]
		} else {
			idx = rankOrder[targetSampler.next()]
		}
		step := rng.Float64() * 2 * p.MeanStep
		var delta float64
		if focus {
			switch p.FocusMode {
			case FocusDecrease:
				delta = -step
			case FocusMixed:
				if idx%2 == 0 {
					delta = step
				} else {
					delta = -step
				}
			default:
				delta = step
			}
		} else {
			if rng.Intn(2) == 0 {
				delta = step
			} else {
				delta = -step
			}
		}
		newScore := current[idx] + delta
		if newScore < 0 {
			newScore = 0
		}
		if newScore > c.params.ScoreMax*10 {
			newScore = c.params.ScoreMax * 10
		}
		current[idx] = newScore
		updates = append(updates, ScoreUpdate{Doc: DocID(idx + 1), NewScore: newScore})
	}
	return updates
}

// --- query workload ---------------------------------------------------------------

// QueryClass selects the selectivity of the query keywords (§5.1).
type QueryClass int

const (
	// Unselective queries draw keywords from the most frequent terms
	// (the paper's top-350 of 200000).
	Unselective QueryClass = iota
	// MediumSelective queries draw from the top 1600.
	MediumSelective
	// Selective queries draw from the top 15000.
	Selective
)

// String implements fmt.Stringer.
func (c QueryClass) String() string {
	switch c {
	case Unselective:
		return "unselective"
	case MediumSelective:
		return "medium"
	case Selective:
		return "selective"
	default:
		return fmt.Sprintf("QueryClass(%d)", int(c))
	}
}

// QueryParams describes a keyword-query workload.
type QueryParams struct {
	Class         QueryClass
	TermsPerQuery int
	NumQueries    int
	Seed          int64
}

// DefaultQueryParams mirrors the paper's default query workload: two-keyword
// unselective queries.
func DefaultQueryParams() QueryParams {
	return QueryParams{Class: Unselective, TermsPerQuery: 2, NumQueries: 50, Seed: 3}
}

// windowFraction maps a query class to the fraction of the ranked vocabulary
// its keywords are drawn from, preserving the paper's proportions (350, 1600
// and 15000 out of 200000 terms).
func windowFraction(class QueryClass) float64 {
	switch class {
	case Unselective:
		return 350.0 / 200000.0
	case MediumSelective:
		return 1600.0 / 200000.0
	default:
		return 15000.0 / 200000.0
	}
}

// GenerateQueries produces keyword queries whose terms are drawn uniformly
// from the class's window of most frequent terms.
func GenerateQueries(c *Corpus, p QueryParams) [][]string {
	rng := rand.New(rand.NewSource(p.Seed))
	window := int(float64(len(c.termRank)) * windowFraction(p.Class))
	if window < p.TermsPerQuery {
		window = p.TermsPerQuery
	}
	if window > len(c.termRank) {
		window = len(c.termRank)
	}
	queries := make([][]string, 0, p.NumQueries)
	for q := 0; q < p.NumQueries; q++ {
		seen := map[int]bool{}
		terms := make([]string, 0, p.TermsPerQuery)
		for len(terms) < p.TermsPerQuery && len(seen) < window {
			i := rng.Intn(window)
			if seen[i] {
				continue
			}
			seen[i] = true
			terms = append(terms, c.termRank[i])
		}
		queries = append(queries, terms)
	}
	return queries
}
