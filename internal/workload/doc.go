// Package workload generates the synthetic and Internet-Archive-style data
// sets, score-update traces and keyword-query workloads used by the paper's
// evaluation (§5.1, Figure 6), scaled to run on a laptop.
//
// The shapes of the distributions follow the paper exactly:
//
//   - term occurrences follow a Zipf distribution with parameter 0.1 over a
//     fixed vocabulary;
//   - document scores range over [0, ScoreMax] and follow a Zipf
//     distribution with parameter 0.75 (what the authors measured on the
//     real Internet Archive data);
//   - score updates target high-score documents more often (Zipf over the
//     score rank), have sizes uniform in [0, 2·mean], and a configurable
//     "focus set" of documents receives a configurable share of strictly
//     increasing updates (flash crowds);
//   - queries draw their keywords from the most frequent terms, with three
//     selectivity classes corresponding to the paper's unselective /
//     medium-selective / selective workloads.
//
// Absolute sizes are scaled down (the paper uses 2000-term documents over a
// 200 000-term vocabulary and an 805 MB table); Params.Scale lets the
// benchmark harness pick a size appropriate for the machine while keeping
// every distribution parameter identical.
//
// See ARCHITECTURE.md for the layer map — where this package sits in the
// stack — and for the repo-wide concurrency contract.
package workload
