package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"svrdb/internal/relation"
	"svrdb/internal/view"
)

// This file generates an Internet-Archive-style relational database — the
// paper's motivating example (Figure 1): a Movies table with a free-text
// description column, a Reviews table with per-movie ratings, and a
// Statistics table with visit and download counters.  The real data set is
// proprietary, so the generator reproduces its published characteristics:
// a Zipf(0.75) popularity distribution (what the authors measured when
// applying their SVR specification to the real data) and text descriptions
// drawn from a small movie-flavoured vocabulary so that multi-keyword
// queries have meaningful selectivity.

// ArchiveParams sizes the generated archive database.
type ArchiveParams struct {
	NumMovies        int
	ReviewsPerMovie  int
	WordsPerDesc     int
	Seed             int64
	PopularityZipf   float64
	MaxVisitsPerItem int64
}

// DefaultArchiveParams returns a laptop-scale archive database.
func DefaultArchiveParams() ArchiveParams {
	return ArchiveParams{
		NumMovies:        2000,
		ReviewsPerMovie:  5,
		WordsPerDesc:     40,
		Seed:             11,
		PopularityZipf:   0.75,
		MaxVisitsPerItem: 100000,
	}
}

// archiveVocabulary is the word pool for movie descriptions.
var archiveVocabulary = []string{
	"golden", "gate", "bridge", "san", "francisco", "newsreel", "archive", "footage",
	"amateur", "film", "classic", "thrift", "american", "documentary", "silent",
	"colour", "restoration", "interview", "parade", "exposition", "earthquake",
	"ferry", "cable", "car", "harbor", "pacific", "ocean", "sunset", "skyline",
	"history", "century", "vintage", "reel", "railroad", "gold", "rush", "miner",
	"city", "street", "market", "tower", "island", "prison", "fog", "lighthouse",
	"jazz", "festival", "wartime", "victory", "migration", "trolley", "museum",
	"science", "industry", "aviation", "shipyard", "worker", "strike", "election",
}

// movieTitleWords feeds generated movie names.
var movieTitleWords = []string{
	"Golden", "Gate", "American", "Thrift", "Amateur", "Film", "Pacific", "Dream",
	"Silent", "City", "Harbor", "Light", "Iron", "Horse", "Fog", "Tower", "Bay",
	"Midnight", "Parade", "Empire", "Frontier", "Cable", "Sunset", "Victory",
}

// ArchiveSchemas returns the three schemas of the example database.
func ArchiveSchemas() []relation.Schema {
	return []relation.Schema{
		{
			Name: "Movies",
			Columns: []relation.Column{
				{Name: "mID", Kind: relation.KindInt64},
				{Name: "name", Kind: relation.KindString},
				{Name: "desc", Kind: relation.KindString},
			},
		},
		{
			Name: "Reviews",
			Columns: []relation.Column{
				{Name: "rID", Kind: relation.KindInt64},
				{Name: "mID", Kind: relation.KindInt64},
				{Name: "rating", Kind: relation.KindFloat64},
			},
		},
		{
			Name: "Statistics",
			Columns: []relation.Column{
				{Name: "sID", Kind: relation.KindInt64},
				{Name: "mID", Kind: relation.KindInt64},
				{Name: "nVisit", Kind: relation.KindInt64},
				{Name: "nDownload", Kind: relation.KindInt64},
			},
		},
	}
}

// BuildArchiveDB creates and populates the Movies/Reviews/Statistics tables
// in db.  It returns the number of movies inserted.
func BuildArchiveDB(db *relation.DB, p ArchiveParams) (int, error) {
	return BuildArchiveDBFiltered(db, p, nil)
}

// BuildArchiveDBFiltered builds the archive database keeping only the
// movies for which keep returns true, along with their reviews and
// statistics rows (nil keeps everything).  The generator consumes its
// random stream and assigns primary keys identically whatever keep does, so
// N builds with complementary predicates partition the exact dataset one
// full build creates — this is how svrserve's shard mode materializes each
// shard's slice without a central loader.
func BuildArchiveDBFiltered(db *relation.DB, p ArchiveParams, keep func(mID int64) bool) (int, error) {
	rng := rand.New(rand.NewSource(p.Seed))
	for _, schema := range ArchiveSchemas() {
		if _, err := db.CreateTable(schema); err != nil {
			return 0, err
		}
	}
	movies, err := db.Table("Movies")
	if err != nil {
		return 0, err
	}
	reviews, err := db.Table("Reviews")
	if err != nil {
		return 0, err
	}
	stats, err := db.Table("Statistics")
	if err != nil {
		return 0, err
	}
	if err := reviews.CreateIndex("mID"); err != nil {
		return 0, err
	}
	if err := stats.CreateIndex("mID"); err != nil {
		return 0, err
	}

	inserted := 0
	reviewID := int64(1)
	for m := 1; m <= p.NumMovies; m++ {
		// Draw every random value before consulting keep: a filtered build
		// must walk the same stream as a full one or the surviving movies
		// would differ between shard and single-node builds.
		mID := int64(m)
		kept := keep == nil || keep(mID)
		name := fmt.Sprintf("%s %s %d",
			movieTitleWords[rng.Intn(len(movieTitleWords))],
			movieTitleWords[rng.Intn(len(movieTitleWords))],
			1900+rng.Intn(120))
		words := make([]string, p.WordsPerDesc)
		for i := range words {
			words[i] = archiveVocabulary[rng.Intn(len(archiveVocabulary))]
		}
		desc := strings.Join(words, " ")
		if kept {
			if err := movies.Insert(relation.Row{
				relation.Int(mID), relation.Str(name), relation.Str(desc),
			}); err != nil {
				return 0, err
			}
			inserted++
		}

		// Popularity: movies are ranked by a random permutation; the rank-r
		// movie gets visits ∝ 1/r^zipf.
		popularity := 1.0 / math.Pow(float64(rng.Intn(p.NumMovies)+1), p.PopularityZipf)
		visits := int64(popularity * float64(p.MaxVisitsPerItem))
		downloads := visits / int64(rng.Intn(9)+2)
		if kept {
			if err := stats.Insert(relation.Row{
				relation.Int(mID), relation.Int(mID),
				relation.Int(visits), relation.Int(downloads),
			}); err != nil {
				return 0, err
			}
		}

		nReviews := rng.Intn(p.ReviewsPerMovie*2 + 1)
		for r := 0; r < nReviews; r++ {
			rating := float64(rng.Intn(5) + 1)
			if kept {
				if err := reviews.Insert(relation.Row{
					relation.Int(reviewID), relation.Int(mID), relation.Float(rating),
				}); err != nil {
					return 0, err
				}
			}
			reviewID++
		}
	}
	return inserted, nil
}

// ArchiveSpec returns the paper's example score specification (§3.1):
//
//	S1 = avg rating from Reviews, S2 = nVisit, S3 = nDownload,
//	Agg(s1, s2, s3) = s1·100 + s2/2 + s3.
func ArchiveSpec() view.Spec {
	return view.Spec{
		Components: []view.Component{
			view.AvgColumn("Reviews", "rating", "mID"),
			view.LookupColumn("Statistics", "nVisit", "mID"),
			view.LookupColumn("Statistics", "nDownload", "mID"),
		},
		Agg: view.WeightedSum(100, 0.5, 1),
	}
}
