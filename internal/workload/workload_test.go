package workload

import (
	"math"
	"testing"

	"svrdb/internal/relation"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
)

func smallParams() Params {
	p := DefaultParams()
	p.NumDocs = 500
	p.TermsPerDoc = 40
	p.VocabSize = 800
	return p
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallParams())
	b := Generate(smallParams())
	if a.NumDocs() != b.NumDocs() {
		t.Fatal("document counts differ between identical seeds")
	}
	ta, _ := a.Tokens(1)
	tb, _ := b.Tokens(1)
	if len(ta) != len(tb) {
		t.Fatal("token counts differ between identical seeds")
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("token %d differs: %s vs %s", i, ta[i], tb[i])
		}
	}
	if a.Score(1) != b.Score(1) {
		t.Error("scores differ between identical seeds")
	}
}

func TestCorpusShape(t *testing.T) {
	p := smallParams()
	c := Generate(p)
	if c.NumDocs() != p.NumDocs {
		t.Errorf("NumDocs = %d, want %d", c.NumDocs(), p.NumDocs)
	}
	count := 0
	err := c.ForEach(func(doc DocID, tokens []string) error {
		if len(tokens) != p.TermsPerDoc {
			t.Errorf("doc %d has %d tokens, want %d", doc, len(tokens), p.TermsPerDoc)
		}
		if s := c.Score(doc); s < 0 || s > p.ScoreMax {
			t.Errorf("doc %d score %g outside [0, %g]", doc, s, p.ScoreMax)
		}
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != p.NumDocs {
		t.Errorf("ForEach visited %d docs, want %d", count, p.NumDocs)
	}
	if c.DistinctTermCount() == 0 || c.DistinctTermCount() > p.VocabSize {
		t.Errorf("DistinctTermCount = %d", c.DistinctTermCount())
	}
	if _, err := c.Tokens(DocID(p.NumDocs + 5)); err == nil {
		t.Error("Tokens of out-of-range doc succeeded")
	}
	if c.Score(DocID(p.NumDocs+5)) != 0 {
		t.Error("Score of out-of-range doc should be 0")
	}
}

func TestScoreDistributionIsSkewed(t *testing.T) {
	c := Generate(smallParams())
	// Zipf(0.75): the max score should be much larger than the median.
	var scores []float64
	c.ForEach(func(doc DocID, _ []string) error {
		scores = append(scores, c.Score(doc))
		return nil
	})
	maxScore, sum := 0.0, 0.0
	for _, s := range scores {
		if s > maxScore {
			maxScore = s
		}
		sum += s
	}
	mean := sum / float64(len(scores))
	if maxScore < 5*mean {
		t.Errorf("score distribution not skewed: max %g, mean %g", maxScore, mean)
	}
}

func TestScaled(t *testing.T) {
	p := DefaultParams()
	s := p.Scaled(0.5)
	if s.NumDocs != p.NumDocs/2 || s.VocabSize != p.VocabSize/2 {
		t.Errorf("Scaled(0.5) = %+v", s)
	}
	if s.TermsPerDoc != p.TermsPerDoc {
		t.Error("Scaled must not change tokens per document")
	}
	if same := p.Scaled(0); same.NumDocs != p.NumDocs {
		t.Error("Scaled(0) should be a no-op")
	}
	if tiny := p.Scaled(0.000001); tiny.NumDocs < 1 || tiny.VocabSize < 16 {
		t.Errorf("Scaled floor violated: %+v", tiny)
	}
}

func TestGenerateUpdates(t *testing.T) {
	c := Generate(smallParams())
	up := DefaultUpdateParams()
	up.NumUpdates = 2000
	up.MeanStep = 100
	updates := GenerateUpdates(c, up)
	if len(updates) != up.NumUpdates {
		t.Fatalf("generated %d updates, want %d", len(updates), up.NumUpdates)
	}
	for i, u := range updates {
		if u.Doc < 1 || int(u.Doc) > c.NumDocs() {
			t.Fatalf("update %d targets invalid doc %d", i, u.Doc)
		}
		if u.NewScore < 0 {
			t.Fatalf("update %d has negative score %g", i, u.NewScore)
		}
	}
	// Deterministic.
	again := GenerateUpdates(c, up)
	for i := range updates {
		if updates[i] != again[i] {
			t.Fatal("update trace not deterministic")
		}
	}
	// Empty cases.
	if got := GenerateUpdates(c, UpdateParams{NumUpdates: 0}); got != nil {
		t.Error("zero updates should produce nil trace")
	}
}

func TestFocusModes(t *testing.T) {
	c := Generate(smallParams())
	base := DefaultUpdateParams()
	base.NumUpdates = 3000
	base.FocusUpdateFraction = 1.0 // every update hits the focus set
	base.FocusSetFraction = 0.02

	inc := base
	inc.FocusMode = FocusIncrease
	dec := base
	dec.FocusMode = FocusDecrease

	incTrace := GenerateUpdates(c, inc)
	decTrace := GenerateUpdates(c, dec)

	// With strictly increasing focus updates the final scores must trend far
	// above the originals; with decreasing they must hit zero floors.
	var incMax, decMax float64
	for _, u := range incTrace {
		if u.NewScore > incMax {
			incMax = u.NewScore
		}
	}
	for _, u := range decTrace {
		if u.NewScore > decMax {
			decMax = u.NewScore
		}
	}
	if incMax <= decMax {
		t.Errorf("increasing focus updates should reach higher scores (inc %g vs dec %g)", incMax, decMax)
	}
}

func TestGenerateQueriesClasses(t *testing.T) {
	c := Generate(smallParams())
	for _, class := range []QueryClass{Unselective, MediumSelective, Selective} {
		qp := QueryParams{Class: class, TermsPerQuery: 2, NumQueries: 10, Seed: 4}
		queries := GenerateQueries(c, qp)
		if len(queries) != 10 {
			t.Fatalf("%v: generated %d queries", class, len(queries))
		}
		for _, q := range queries {
			if len(q) != 2 {
				t.Errorf("%v: query %v does not have 2 terms", class, q)
			}
			if q[0] == q[1] {
				t.Errorf("%v: query has duplicate terms %v", class, q)
			}
		}
	}
	if Unselective.String() != "unselective" || MediumSelective.String() != "medium" || Selective.String() != "selective" {
		t.Error("QueryClass String() values wrong")
	}
}

func TestUnselectiveQueriesUseFrequentTerms(t *testing.T) {
	c := Generate(smallParams())
	// Document frequency of terms used in unselective queries should be
	// higher on average than those in selective queries.
	df := map[string]int{}
	c.ForEach(func(doc DocID, tokens []string) error {
		seen := map[string]bool{}
		for _, tok := range tokens {
			if !seen[tok] {
				df[tok]++
				seen[tok] = true
			}
		}
		return nil
	})
	avgDF := func(queries [][]string) float64 {
		total, n := 0, 0
		for _, q := range queries {
			for _, term := range q {
				total += df[term]
				n++
			}
		}
		return float64(total) / float64(n)
	}
	uns := avgDF(GenerateQueries(c, QueryParams{Class: Unselective, TermsPerQuery: 2, NumQueries: 30, Seed: 5}))
	sel := avgDF(GenerateQueries(c, QueryParams{Class: Selective, TermsPerQuery: 2, NumQueries: 30, Seed: 5}))
	if uns <= sel {
		t.Errorf("unselective queries should use more frequent terms (avg df %g vs %g)", uns, sel)
	}
}

func TestBuildArchiveDB(t *testing.T) {
	db := relation.NewDB(buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), 4096))
	p := DefaultArchiveParams()
	p.NumMovies = 100
	n, err := BuildArchiveDB(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("BuildArchiveDB returned %d movies", n)
	}
	movies, err := db.Table("Movies")
	if err != nil {
		t.Fatal(err)
	}
	if movies.Len() != 100 {
		t.Errorf("Movies has %d rows, want 100", movies.Len())
	}
	stats, err := db.Table("Statistics")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Len() != 100 {
		t.Errorf("Statistics has %d rows, want 100", stats.Len())
	}
	reviews, err := db.Table("Reviews")
	if err != nil {
		t.Fatal(err)
	}
	if reviews.Len() == 0 {
		t.Error("no reviews generated")
	}
	// The archive spec must evaluate without error for every movie.
	spec := ArchiveSpec()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	for pk := int64(1); pk <= 5; pk++ {
		total := 0.0
		vals := make([]float64, len(spec.Components))
		for i, comp := range spec.Components {
			v, err := comp.Eval(db, pk)
			if err != nil {
				t.Fatalf("component %q for movie %d: %v", comp.Name, pk, err)
			}
			vals[i] = v
		}
		total = spec.Agg(vals)
		if math.IsNaN(total) || total < 0 {
			t.Errorf("archive score for movie %d is %g", pk, total)
		}
	}
	// Building twice into the same database must fail (tables exist).
	if _, err := BuildArchiveDB(db, p); err == nil {
		t.Error("second BuildArchiveDB into the same catalog succeeded")
	}
}

func TestZipfSamplerSkew(t *testing.T) {
	c := Generate(smallParams())
	// Most frequent term should appear in many more documents than the
	// median term — a sanity check that Zipf sampling is wired in.
	df := map[string]int{}
	c.ForEach(func(doc DocID, tokens []string) error {
		seen := map[string]bool{}
		for _, tok := range tokens {
			if !seen[tok] {
				df[tok]++
				seen[tok] = true
			}
		}
		return nil
	})
	maxDF := 0
	total := 0
	for _, n := range df {
		if n > maxDF {
			maxDF = n
		}
		total += n
	}
	mean := float64(total) / float64(len(df))
	// Zipf(0.1) is intentionally mild (as in the paper), so the most frequent
	// term is only moderately above the mean — but it must be above it.
	if float64(maxDF) < 1.3*mean {
		t.Errorf("term document frequencies not skewed: max %d, mean %g", maxDF, mean)
	}
}
