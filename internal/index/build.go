package index

import (
	"fmt"
	"sort"

	"svrdb/internal/postings"
	"svrdb/internal/storage/btree"
	"svrdb/internal/text"
)

// builtCorpus is the in-memory image of the collection used during bulk
// builds: per-term postings in document order plus the initial score of
// every document.  The paper's experiments bulk-load the long inverted
// lists once and then measure incremental updates against them; this struct
// is the staging area for that bulk load.
type builtCorpus struct {
	// termDocs[term] lists (doc, normalized TF) pairs sorted by doc ID.
	termDocs map[string][]docWeight
	// docScores holds the build-time SVR score of every document.
	docScores map[DocID]float64
	// docs lists every document ID in ascending order.
	docs []DocID
	// docLens holds token counts (for diagnostics).
	docLens map[DocID]int

	// scoreRank caches each document's position in the global
	// (score desc, doc asc) order, so the per-term sorts of score-ordered
	// builds compare small integers instead of probing the score map twice
	// per comparison.
	scoreRank map[DocID]int32
	// cidChunker/cidOf cache ChunkOf per document for the chunker of the
	// current build.
	cidChunker *chunker
	cidOf      map[DocID]int32
}

type docWeight struct {
	doc DocID
	w   float32
}

// accumulate tokenizes every document and groups postings per term.
// Postings collect in slices addressed through a term-interning map, so the
// hot loop pays one map read per (document, term) pair instead of a map
// write per posting.
func accumulate(src DocSource, scores ScoreFunc, dict *text.Dictionary) (*builtCorpus, error) {
	bc := &builtCorpus{
		termDocs:  map[string][]docWeight{},
		docScores: map[DocID]float64{},
		docLens:   map[DocID]int{},
	}
	termIdx := map[string]int32{}
	var termLists [][]docWeight
	var termNames []string
	tf := map[string]int{} // per-document term frequencies, reused
	var distinct []string  // per-document distinct terms, reused
	err := src.ForEach(func(doc DocID, tokens []string) error {
		if _, dup := bc.docScores[doc]; dup {
			return fmt.Errorf("index: duplicate document ID %d in source", doc)
		}
		score := scores(doc)
		if score < 0 {
			return fmt.Errorf("index: document %d has negative score %g (scores must be non-negative)", doc, score)
		}
		bc.docScores[doc] = score
		bc.docLens[doc] = len(tokens)
		bc.docs = append(bc.docs, doc)
		clear(tf)
		for _, t := range tokens {
			tf[t]++
		}
		distinct = distinct[:0]
		for term, n := range tf {
			w := text.NormalizedTF(n, len(tokens))
			i, ok := termIdx[term]
			if !ok {
				i = int32(len(termLists))
				termIdx[term] = i
				termLists = append(termLists, nil)
				termNames = append(termNames, term)
			}
			termLists[i] = append(termLists[i], docWeight{doc: doc, w: w})
			distinct = append(distinct, term)
		}
		if dict != nil {
			dict.AddDocumentTerms(distinct)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range termNames {
		bc.termDocs[name] = termLists[i]
	}
	if !sort.SliceIsSorted(bc.docs, func(i, j int) bool { return bc.docs[i] < bc.docs[j] }) {
		sort.Slice(bc.docs, func(i, j int) bool { return bc.docs[i] < bc.docs[j] })
	}
	for term := range bc.termDocs {
		ds := bc.termDocs[term]
		// Sources almost always visit documents in ascending ID order, in
		// which case the per-term postings inherit it; only sort otherwise.
		if !sort.SliceIsSorted(ds, func(i, j int) bool { return ds[i].doc < ds[j].doc }) {
			sort.Slice(ds, func(i, j int) bool { return ds[i].doc < ds[j].doc })
		}
	}
	return bc, nil
}

// terms returns the distinct terms in sorted order (deterministic builds).
func (bc *builtCorpus) terms() []string {
	out := make([]string, 0, len(bc.termDocs))
	for t := range bc.termDocs {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// allScores returns the build-time scores (used to derive chunk boundaries).
func (bc *builtCorpus) allScores() []float64 {
	out := make([]float64, 0, len(bc.docScores))
	for _, s := range bc.docScores {
		out = append(out, s)
	}
	return out
}

// populateScoreTable writes every document's build-time score into the Score
// table shared by all methods.  A fresh (empty) table is bulk-loaded from
// the already-sorted document run — one left-to-right leaf-packing pass
// instead of one B+-tree descent and leaf rewrite per document.  A rebuild
// over an existing table (MergeShortLists) keeps the per-document writes so
// deletion markers outside the snapshot survive.
func (b *base) populateScoreTable(bc *builtCorpus) error {
	if b.score.Len() == 0 && len(bc.docs) > 0 {
		items := make([]btree.Item, len(bc.docs))
		for i, doc := range bc.docs {
			items[i] = btree.Item{Key: scoreTableKey(doc), Value: encodeScoreEntry(bc.docScores[doc], false)}
		}
		if err := b.score.bulkLoad(b.cfg.Pool, items); err != nil {
			return err
		}
		b.numDocs.Store(int64(len(bc.docs)))
		return nil
	}
	for _, doc := range bc.docs {
		if err := b.score.Set(doc, bc.docScores[doc]); err != nil {
			return err
		}
	}
	b.numDocs.Store(int64(len(bc.docs)))
	return nil
}

// rank returns (building lazily) the global (score desc, doc asc) position
// of every document.
func (bc *builtCorpus) rank() map[DocID]int32 {
	if bc.scoreRank != nil {
		return bc.scoreRank
	}
	docs := append([]DocID(nil), bc.docs...)
	sort.Slice(docs, func(i, j int) bool {
		si, sj := bc.docScores[docs[i]], bc.docScores[docs[j]]
		if si != sj {
			return si > sj
		}
		return docs[i] < docs[j]
	})
	m := make(map[DocID]int32, len(docs))
	for i, d := range docs {
		m[d] = int32(i)
	}
	bc.scoreRank = m
	return m
}

// byRank sorts postings by a precomputed rank key.
type byRank struct {
	ds []docWeight
	rs []int32
}

func (b *byRank) Len() int           { return len(b.ds) }
func (b *byRank) Less(i, j int) bool { return b.rs[i] < b.rs[j] }
func (b *byRank) Swap(i, j int) {
	b.ds[i], b.ds[j] = b.ds[j], b.ds[i]
	b.rs[i], b.rs[j] = b.rs[j], b.rs[i]
}

// sortedByScoreDesc returns a term's postings ordered by (build score desc,
// doc asc), the order required by the Score and Score-Threshold long lists.
func (bc *builtCorpus) sortedByScoreDesc(term string) []docWeight {
	rank := bc.rank()
	ds := append([]docWeight(nil), bc.termDocs[term]...)
	rs := make([]int32, len(ds))
	for i := range ds {
		rs[i] = rank[ds[i].doc]
	}
	sort.Sort(&byRank{ds: ds, rs: rs})
	return ds
}

// chunked groups a term's postings by chunk ID, returning chunk IDs in
// descending order, each with its postings in ascending document order (the
// physical layout of the Chunk long lists).
func (bc *builtCorpus) chunked(term string, ch *chunker) (cids []int32, byChunk map[int32][]postings.ChunkPosting) {
	if bc.cidChunker != ch {
		bc.cidChunker = ch
		bc.cidOf = make(map[DocID]int32, len(bc.docs))
		for _, doc := range bc.docs {
			bc.cidOf[doc] = ch.ChunkOf(bc.docScores[doc])
		}
	}
	byChunk = map[int32][]postings.ChunkPosting{}
	for _, dw := range bc.termDocs[term] {
		cid := bc.cidOf[dw.doc]
		byChunk[cid] = append(byChunk[cid], postings.ChunkPosting{Doc: dw.doc, TermScore: dw.w})
	}
	for cid := range byChunk {
		cids = append(cids, cid)
	}
	sort.Slice(cids, func(i, j int) bool { return cids[i] > cids[j] })
	// Postings inherit ascending doc order from termDocs, which is already
	// sorted by doc; grouping preserves it.
	return cids, byChunk
}

// fancyWorse orders fancy-list candidates: a is worse than b when it has a
// lower weight, or the same weight and a higher document ID (the same
// eviction order as topk.Heap).
func fancyWorse(a, b docWeight) bool {
	if a.w != b.w {
		return a.w < b.w
	}
	return a.doc > b.doc
}

// fancy returns the top-n postings of a term by term weight, in ascending
// document order, plus the smallest weight included (the ε_t used by the
// Chunk-TermScore stopping rule).  Lists longer than n go through a size-n
// min-heap selection (O(L log n)) instead of a full sort.  The heap is a
// local slice rather than topk.Heap on purpose: topk maintains a doc→slot
// map per movement for its query-time duplicate handling, and that
// bookkeeping measurably slows the build (this loop runs once per distinct
// term over every posting in the collection).
func (bc *builtCorpus) fancy(term string, n int) (posts []docWeight, minWeight float32) {
	src := bc.termDocs[term]
	if len(src) <= n {
		// Every posting qualifies; src is already in ascending doc order.
		ds := append([]docWeight(nil), src...)
		for i, dw := range ds {
			if i == 0 || dw.w < minWeight {
				minWeight = dw.w
			}
		}
		return ds, minWeight
	}
	// Min-heap of the n best seen so far, rooted at the worst of them.
	heap := make([]docWeight, 0, n)
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			worst := i
			if l < len(heap) && fancyWorse(heap[l], heap[worst]) {
				worst = l
			}
			if r < len(heap) && fancyWorse(heap[r], heap[worst]) {
				worst = r
			}
			if worst == i {
				return
			}
			heap[i], heap[worst] = heap[worst], heap[i]
			i = worst
		}
	}
	for _, dw := range src {
		if len(heap) < n {
			heap = append(heap, dw)
			for i := len(heap) - 1; i > 0; {
				p := (i - 1) / 2
				if !fancyWorse(heap[i], heap[p]) {
					break
				}
				heap[i], heap[p] = heap[p], heap[i]
				i = p
			}
			continue
		}
		if fancyWorse(dw, heap[0]) {
			continue
		}
		heap[0] = dw
		siftDown(0)
	}
	minWeight = heap[0].w
	sort.Slice(heap, func(i, j int) bool { return heap[i].doc < heap[j].doc })
	return heap, minWeight
}
