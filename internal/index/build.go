package index

import (
	"fmt"
	"sort"

	"svrdb/internal/postings"
	"svrdb/internal/text"
)

// builtCorpus is the in-memory image of the collection used during bulk
// builds: per-term postings in document order plus the initial score of
// every document.  The paper's experiments bulk-load the long inverted
// lists once and then measure incremental updates against them; this struct
// is the staging area for that bulk load.
type builtCorpus struct {
	// termDocs[term] lists (doc, normalized TF) pairs sorted by doc ID.
	termDocs map[string][]docWeight
	// docScores holds the build-time SVR score of every document.
	docScores map[DocID]float64
	// docs lists every document ID in ascending order.
	docs []DocID
	// docLens holds token counts (for diagnostics).
	docLens map[DocID]int
}

type docWeight struct {
	doc DocID
	w   float32
}

// accumulate tokenizes every document and groups postings per term.
func accumulate(src DocSource, scores ScoreFunc, dict *text.Dictionary) (*builtCorpus, error) {
	bc := &builtCorpus{
		termDocs:  map[string][]docWeight{},
		docScores: map[DocID]float64{},
		docLens:   map[DocID]int{},
	}
	err := src.ForEach(func(doc DocID, tokens []string) error {
		if _, dup := bc.docScores[doc]; dup {
			return fmt.Errorf("index: duplicate document ID %d in source", doc)
		}
		score := scores(doc)
		if score < 0 {
			return fmt.Errorf("index: document %d has negative score %g (scores must be non-negative)", doc, score)
		}
		bc.docScores[doc] = score
		bc.docLens[doc] = len(tokens)
		bc.docs = append(bc.docs, doc)
		weights := docTermWeights(tokens)
		distinct := make([]string, 0, len(weights))
		for _, tw := range weights {
			bc.termDocs[tw.term] = append(bc.termDocs[tw.term], docWeight{doc: doc, w: tw.w})
			distinct = append(distinct, tw.term)
		}
		if dict != nil {
			dict.AddDocumentTerms(distinct)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(bc.docs, func(i, j int) bool { return bc.docs[i] < bc.docs[j] })
	for term := range bc.termDocs {
		ds := bc.termDocs[term]
		sort.Slice(ds, func(i, j int) bool { return ds[i].doc < ds[j].doc })
	}
	return bc, nil
}

// terms returns the distinct terms in sorted order (deterministic builds).
func (bc *builtCorpus) terms() []string {
	out := make([]string, 0, len(bc.termDocs))
	for t := range bc.termDocs {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// allScores returns the build-time scores (used to derive chunk boundaries).
func (bc *builtCorpus) allScores() []float64 {
	out := make([]float64, 0, len(bc.docScores))
	for _, s := range bc.docScores {
		out = append(out, s)
	}
	return out
}

// populateScoreTable writes every document's build-time score into the Score
// table shared by all methods.
func (b *base) populateScoreTable(bc *builtCorpus) error {
	for _, doc := range bc.docs {
		if err := b.score.Set(doc, bc.docScores[doc]); err != nil {
			return err
		}
	}
	b.numDocs = int64(len(bc.docs))
	return nil
}

// sortedByScoreDesc returns a term's postings ordered by (build score desc,
// doc asc), the order required by the Score and Score-Threshold long lists.
func (bc *builtCorpus) sortedByScoreDesc(term string) []docWeight {
	ds := append([]docWeight(nil), bc.termDocs[term]...)
	sort.Slice(ds, func(i, j int) bool {
		si, sj := bc.docScores[ds[i].doc], bc.docScores[ds[j].doc]
		if si != sj {
			return si > sj
		}
		return ds[i].doc < ds[j].doc
	})
	return ds
}

// chunked groups a term's postings by chunk ID, returning chunk IDs in
// descending order, each with its postings in ascending document order (the
// physical layout of the Chunk long lists).
func (bc *builtCorpus) chunked(term string, ch *chunker) (cids []int32, byChunk map[int32][]postings.ChunkPosting) {
	byChunk = map[int32][]postings.ChunkPosting{}
	for _, dw := range bc.termDocs[term] {
		cid := ch.ChunkOf(bc.docScores[dw.doc])
		byChunk[cid] = append(byChunk[cid], postings.ChunkPosting{Doc: dw.doc, TermScore: dw.w})
	}
	for cid := range byChunk {
		cids = append(cids, cid)
	}
	sort.Slice(cids, func(i, j int) bool { return cids[i] > cids[j] })
	// Postings inherit ascending doc order from termDocs, which is already
	// sorted by doc; grouping preserves it.
	return cids, byChunk
}

// fancy returns the top-n postings of a term by term weight, in ascending
// document order, plus the smallest weight included (the ε_t used by the
// Chunk-TermScore stopping rule).
func (bc *builtCorpus) fancy(term string, n int) (posts []docWeight, minWeight float32) {
	ds := append([]docWeight(nil), bc.termDocs[term]...)
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].w != ds[j].w {
			return ds[i].w > ds[j].w
		}
		return ds[i].doc < ds[j].doc
	})
	if len(ds) > n {
		ds = ds[:n]
	}
	if len(ds) > 0 {
		minWeight = ds[len(ds)-1].w
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].doc < ds[j].doc })
	return ds, minWeight
}
