package index

import (
	"svrdb/internal/postings"
	"svrdb/internal/storage/blob"
	"svrdb/internal/storage/epoch"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/text"
)

// This file implements the epoch/snapshot read protocol that lets queries
// run without blocking behind maintenance.
//
// Every method keeps an atomically published *snap: a frozen image of all
// the state a query touches — B+-tree roots of the Score table and the
// method's lists, the long-list blob refs, the chunker / score directory,
// and a frozen document-frequency vector for IDF.  Readers enter the
// current epoch, load the snapshot, and evaluate entirely against it; the
// serialized writer mutates copy-on-write trees in private (fresh) pages
// and publishes by storing a new snap and advancing the epoch.  Pages the
// writer superseded are retired to the epoch manager and recycled only
// after every reader that could still reach them has left.
//
// Publication ordering: the writer's page writes happen-before the atomic
// Store of the snap (release), and a reader's Load (acquire) happens-before
// its page reads — published pages are never written in place, so reads are
// race-free without any reader-side lock.

// snap is one published snapshot.  All fields are immutable after
// publication: maps and slices are either freshly built per generation and
// never mutated again (longRefs, fancyRefs, scoreDir, df) or replaced
// wholesale by the structures they come from.
type snap struct {
	// score is the frozen Score table.
	score scoreView
	// lists is the method's single mutable keyed list: the ID family's
	// auxiliary list, the Score method's clustered lists, or the
	// threshold/chunk families' short lists.
	lists keyedView
	// table is the ListScore/ListChunk table (threshold and chunk families).
	table listView

	longRefs     map[string]blob.Ref
	longBytes    uint64
	longRawBytes uint64
	numDocs      int64
	// dict resolves terms to IDs; term→ID assignments are stable, so the
	// live dictionary is shared and df freezes the per-ID frequencies.
	dict *text.Dictionary
	df   []int64

	// scoreDir is the Score-Threshold compressed-list score directory.
	scoreDir []float64
	// chunks is the Chunk family's boundary vector (immutable once built).
	chunks *chunker

	// Fancy-list state (Chunk-TermScore only).
	fancyRefs  map[string]blob.Ref
	fancyMinW  map[string]float32
	fancyBytes uint64
}

// publish freezes the method's current state into a new snapshot, stores it
// for readers and advances the epoch so that pages retired while building
// it become reclaimable once the previous snapshot's readers drain.  Every
// mutating entry point publishes on the way out; ApplyUpdates suppresses
// the per-update publishes and issues one per batch.
func (b *base) publish() {
	if b.suppress {
		return
	}
	s := &snap{}
	b.fillBase(s)
	if b.fillExtra != nil {
		b.fillExtra(s)
	}
	b.published.Store(s)
	b.epochs.Advance()
}

// fillBase captures the state shared by every method.  The
// document-frequency vector is copied only when the dictionary changed
// since the last publication, so score-only batches skip the O(vocabulary)
// copy.
func (b *base) fillBase(s *snap) {
	s.score = b.score.snapshotView()
	s.longRefs = b.longRefs
	s.longBytes = b.longBytes
	s.longRawBytes = b.longRawBytes
	s.numDocs = b.numDocs.Load()
	s.dict = b.dict
	if gen := b.dict.Gen(); b.pubDF == nil || b.pubDict != b.dict || gen != b.pubGen {
		b.pubDF = b.dict.DocFreqSnapshot()
		b.pubDict = b.dict
		b.pubGen = gen
	}
	s.df = b.pubDF
}

// acquire pins the current epoch and loads the published snapshot.  The
// caller must Leave the guard when it no longer holds references into the
// snapshot.  After Drain, acquire fails with ErrClosed.
func (b *base) acquire() (*snap, epoch.Guard, error) {
	g := b.epochs.Enter()
	if !g.Ok() {
		return nil, g, ErrClosed
	}
	return b.published.Load(), g, nil
}

// Drain implements Method: it fences out new readers, waits for in-flight
// ones to finish and recycles every retired page.  The method must not be
// used afterwards.
func (b *base) Drain() error { return b.epochs.Drain() }

// retirePage hands one superseded page to the epoch manager; it is the
// retire hook wired into every COW tree.
func (b *base) retirePage(id pagefile.PageID) { b.epochs.Retire(id) }

// retireBlobRefs retires every page of the given long-list blobs (used by
// the offline merge, which supersedes a whole generation of lists at once).
func (b *base) retireBlobRefs(refs map[string]blob.Ref) {
	pageSize := b.cfg.Pool.PageSize()
	for _, ref := range refs {
		for i := uint64(0); i < ref.PageSpan(pageSize); i++ {
			b.epochs.Retire(ref.FirstPage + pagefile.PageID(i))
		}
	}
}

// fillEpochStats copies the epoch manager's counters into s.
func (b *base) fillEpochStats(s *Stats) {
	es := b.epochs.Stats()
	s.Epoch = es.Current
	s.ActiveReaders = es.ActiveGuards
	s.RetainedPages = es.RetainedPages
}

// docFreq resolves a term's frozen document frequency.  Terms interned
// after the snapshot was taken have IDs past the end of the frozen vector
// and report 0, exactly as if they were unknown at capture time.
func (s *snap) docFreq(term string) int64 {
	id, ok := s.dict.Lookup(term)
	if !ok || int(id) >= len(s.df) {
		return 0
	}
	return s.df[id]
}

// idf returns the term's inverse document frequency under the snapshot's
// collection statistics.
func (s *snap) idf(term string) float64 {
	return text.IDF(text.CollectionStats{NumDocs: s.numDocs}, s.docFreq(term))
}

// queryIDF returns the idf of q.Terms[i]: the snapshot's own statistics by
// default, or the cluster-wide override when the query carries GlobalStats.
// i indexes the query's term list, which Validate guarantees is aligned
// with Global.DF.
func (s *snap) queryIDF(q *Query, i int) float64 {
	if q.Global != nil {
		return text.IDF(text.CollectionStats{NumDocs: q.Global.NumDocs}, q.Global.DF[i])
	}
	return s.idf(q.Terms[i])
}

// TermStats implements Method for every method via the embedded base: it
// reports the published snapshot's document count and per-term document
// frequencies, the inputs a cluster sums into GlobalStats.
func (b *base) TermStats(terms []string) (int64, []int64, error) {
	s, g, err := b.acquire()
	if err != nil {
		return 0, nil, err
	}
	defer g.Leave()
	df := make([]int64, len(terms))
	for i, term := range terms {
		df[i] = s.docFreq(term)
	}
	return s.numDocs, df, nil
}

// currentScore resolves a document's latest score in the snapshot,
// reporting include=false for deleted or unknown documents.
func (s *snap) currentScore(doc DocID) (float64, bool, error) {
	score, deleted, ok, err := s.score.Get(doc)
	if err != nil {
		return 0, false, err
	}
	if !ok || deleted {
		return 0, false, nil
	}
	return score, true, nil
}

// currentScoreResolver returns a resolve function that looks up the current
// score in the snapshot's Score table and skips deleted or unknown
// documents.  Candidates arrive in ascending document order, so the lookups
// run through a per-query probe that reuses the leaf of the previous one.
func (s *snap) currentScoreResolver() func(g postings.Group) (float64, bool, error) {
	probe := s.score.newProbe()
	return func(g postings.Group) (float64, bool, error) {
		score, deleted, ok, err := probe.Get(g.Doc)
		if err != nil {
			return 0, false, err
		}
		if !ok || deleted {
			return 0, false, nil
		}
		return score, true, nil
	}
}
