package index

import (
	"fmt"
	"math/rand"
	"testing"

	"svrdb/internal/postings"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
)

// Tests for the internal building blocks shared by the index methods: the
// Score table, the ListScore/ListChunk table, and the B+-tree-backed keyed
// posting lists (short lists and the Score method's clustered lists).

func newTestPool(tb testing.TB) *buffer.Pool {
	tb.Helper()
	return buffer.MustNew(pagefile.MustNewMem(1024), 2048)
}

func TestScoreTableBasics(t *testing.T) {
	st, err := newScoreTable(newTestPool(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := st.Get(5); ok {
		t.Error("empty table reported a score")
	}
	if err := st.Set(5, 87.13); err != nil {
		t.Fatal(err)
	}
	score, deleted, ok, err := st.Get(5)
	if err != nil || !ok || deleted || score != 87.13 {
		t.Errorf("Get = %v %v %v %v", score, deleted, ok, err)
	}
	if err := st.Set(5, 124.2); err != nil {
		t.Fatal(err)
	}
	score, _, _, _ = st.Get(5)
	if score != 124.2 {
		t.Errorf("score after update = %v", score)
	}
	if err := st.MarkDeleted(5); err != nil {
		t.Fatal(err)
	}
	score, deleted, ok, _ = st.Get(5)
	if !ok || !deleted || score != 124.2 {
		t.Errorf("after MarkDeleted: %v %v %v", score, deleted, ok)
	}
	// Re-setting the score clears the deleted flag (ID reuse).
	if err := st.Set(5, 10); err != nil {
		t.Fatal(err)
	}
	_, deleted, _, _ = st.Get(5)
	if deleted {
		t.Error("Set did not clear the deleted flag")
	}
	if err := st.MarkDeleted(999); err == nil {
		t.Error("MarkDeleted of unknown doc succeeded")
	}
	if st.Len() != 1 {
		t.Errorf("Len = %d, want 1", st.Len())
	}
	if st.Lookups() == 0 {
		t.Error("lookup counter not incremented")
	}
}

func TestScoreTableForEach(t *testing.T) {
	st, err := newScoreTable(newTestPool(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 20; i++ {
		if err := st.Set(DocID(i), float64(i)*10); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.MarkDeleted(7); err != nil {
		t.Fatal(err)
	}
	var docs []DocID
	deletedCount := 0
	if err := st.ForEach(func(doc DocID, score float64, deleted bool) bool {
		docs = append(docs, doc)
		if deleted {
			deletedCount++
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(docs) != 20 || deletedCount != 1 {
		t.Errorf("ForEach visited %d docs with %d deleted", len(docs), deletedCount)
	}
	for i := 1; i < len(docs); i++ {
		if docs[i-1] >= docs[i] {
			t.Fatal("ForEach not in document order")
		}
	}
	// Early stop.
	count := 0
	st.ForEach(func(DocID, float64, bool) bool { count++; return count < 5 })
	if count != 5 {
		t.Errorf("early-stopped ForEach visited %d", count)
	}
}

func TestListTable(t *testing.T) {
	lt, err := newListTable(newTestPool(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := lt.Get(3); ok {
		t.Error("empty table returned an entry")
	}
	if err := lt.Put(3, listEntry{Key: 87.13, InShortList: false}); err != nil {
		t.Fatal(err)
	}
	e, ok, err := lt.Get(3)
	if err != nil || !ok || e.Key != 87.13 || e.InShortList {
		t.Errorf("Get = %+v %v %v", e, ok, err)
	}
	if err := lt.Put(3, listEntry{Key: 124.2, InShortList: true}); err != nil {
		t.Fatal(err)
	}
	e, _, _ = lt.Get(3)
	if e.Key != 124.2 || !e.InShortList {
		t.Errorf("entry after update = %+v", e)
	}
	if lt.Len() != 1 {
		t.Errorf("Len = %d", lt.Len())
	}
	if err := lt.Delete(3); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := lt.Get(3); ok {
		t.Error("entry survived delete")
	}
}

func TestKeyedListOrderingAndCollect(t *testing.T) {
	kl, err := newKeyedList(newTestPool(t))
	if err != nil {
		t.Fatal(err)
	}
	// Insert postings for two terms with interleaved sort keys.
	type p struct {
		term string
		key  float64
		doc  DocID
	}
	var ps []p
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 500; i++ {
		ps = append(ps, p{
			term: []string{"news", "gate"}[rng.Intn(2)],
			key:  float64(rng.Intn(50)),
			doc:  DocID(rng.Intn(1000)),
		})
	}
	inserted := map[string]bool{}
	for _, x := range ps {
		if err := kl.Put(x.term, x.key, x.doc, postings.OpAdd, float32(x.key)); err != nil {
			t.Fatal(err)
		}
		inserted[fmt.Sprintf("%s/%v/%d", x.term, x.key, x.doc)] = true
	}
	if kl.Len() != len(inserted) {
		t.Errorf("Len = %d, want %d distinct postings", kl.Len(), len(inserted))
	}
	entries, err := kl.Collect("news")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(entries); i++ {
		a, b := entries[i-1], entries[i]
		if a.SortKey < b.SortKey || (a.SortKey == b.SortKey && a.Doc >= b.Doc) {
			t.Fatalf("collect order violated at %d: %+v then %+v", i, a, b)
		}
	}
	for _, e := range entries {
		if !e.FromShort {
			t.Error("collected entries must be marked FromShort")
		}
		if e.TermScore != float32(e.SortKey) {
			t.Errorf("term score %v does not round-trip (key %v)", e.TermScore, e.SortKey)
		}
	}
	// Other term must not leak into this term's entries.
	gateEntries, _ := kl.Collect("gate")
	if len(entries)+len(gateEntries) != kl.Len() {
		t.Errorf("per-term collects (%d + %d) do not cover all %d postings", len(entries), len(gateEntries), kl.Len())
	}
}

func TestKeyedListDeleteAndDeleteAllForDoc(t *testing.T) {
	kl, err := newKeyedList(newTestPool(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := kl.Put("news", float64(i), 42, postings.OpAdd, 0); err != nil {
			t.Fatal(err)
		}
		if err := kl.Put("news", float64(i), 43, postings.OpAdd, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := kl.Delete("news", 3, 42); err != nil {
		t.Fatal(err)
	}
	if kl.Len() != 19 {
		t.Errorf("Len after single delete = %d, want 19", kl.Len())
	}
	// Deleting a missing posting is a no-op.
	if err := kl.Delete("news", 99, 42); err != nil {
		t.Fatal(err)
	}
	if kl.Len() != 19 {
		t.Errorf("Len after no-op delete = %d", kl.Len())
	}
	if err := kl.DeleteAllForDoc("news", 42); err != nil {
		t.Fatal(err)
	}
	entries, _ := kl.Collect("news")
	if len(entries) != 10 {
		t.Errorf("after DeleteAllForDoc, %d postings remain, want 10 (doc 43 only)", len(entries))
	}
	for _, e := range entries {
		if e.Doc != 43 {
			t.Errorf("posting for doc %d survived DeleteAllForDoc", e.Doc)
		}
	}
}

func TestTreeCursorStreamsInBatches(t *testing.T) {
	kl, err := newKeyedList(newTestPool(t))
	if err != nil {
		t.Fatal(err)
	}
	// More postings than one cursor batch.
	const n = cursorBatchSize*3 + 17
	for i := 0; i < n; i++ {
		if err := kl.Put("term", float64(n-i), DocID(i), postings.OpAdd, 0); err != nil {
			t.Fatal(err)
		}
	}
	// A different term that must not be visited.
	if err := kl.Put("other", 1, 1, postings.OpAdd, 0); err != nil {
		t.Fatal(err)
	}
	cur := kl.Cursor("term", false)
	count := 0
	prevKey := float64(1 << 30)
	for {
		e, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if e.SortKey > prevKey {
			t.Fatalf("cursor order violated: %v after %v", e.SortKey, prevKey)
		}
		prevKey = e.SortKey
		if e.FromShort {
			t.Error("cursor with fromShort=false produced FromShort entries")
		}
		count++
	}
	if count != n {
		t.Errorf("cursor visited %d postings, want %d", count, n)
	}
	// Cursor over an absent term terminates immediately.
	empty := kl.Cursor("absent", false)
	if _, ok, _ := empty.Next(); ok {
		t.Error("cursor over absent term yielded a posting")
	}
}

func TestKeyedListSizeBytes(t *testing.T) {
	kl, err := newKeyedList(newTestPool(t))
	if err != nil {
		t.Fatal(err)
	}
	if sz, err := kl.SizeBytes(); err != nil || sz != 0 {
		t.Errorf("empty SizeBytes = %d, %v", sz, err)
	}
	for i := 0; i < 100; i++ {
		if err := kl.Put("t", float64(i), DocID(i), postings.OpAdd, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	sz, err := kl.SizeBytes()
	if err != nil || sz == 0 {
		t.Errorf("SizeBytes = %d, %v", sz, err)
	}
	if kl.String() == "" {
		t.Error("String() empty")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.ThresholdRatio != 11.24 || c.ChunkRatio != 6.12 || c.MinChunkSize != 100 || c.FancyListSize != 32 {
		t.Errorf("Defaults = %+v", c)
	}
	custom := Config{ThresholdRatio: 3, ChunkRatio: 2, MinChunkSize: 7, FancyListSize: 9}.Defaults()
	if custom.ThresholdRatio != 3 || custom.ChunkRatio != 2 || custom.MinChunkSize != 7 || custom.FancyListSize != 9 {
		t.Errorf("Defaults overwrote explicit values: %+v", custom)
	}
	if _, err := newBase(Config{}); err == nil {
		t.Error("newBase without a pool succeeded")
	}
}

func TestDiffTerms(t *testing.T) {
	added, removed := diffTerms(
		[]string{"golden", "gate", "bridge", "gate"},
		[]string{"golden", "gate", "ferry"},
	)
	if len(added) != 1 || added[0] != "ferry" {
		t.Errorf("added = %v", added)
	}
	if len(removed) != 1 || removed[0] != "bridge" {
		t.Errorf("removed = %v", removed)
	}
	added, removed = diffTerms(nil, nil)
	if len(added) != 0 || len(removed) != 0 {
		t.Errorf("diff of empty streams = %v, %v", added, removed)
	}
}

func TestDocTermWeights(t *testing.T) {
	weights := docTermWeights([]string{"a", "b", "a", "a", "c"})
	byTerm := map[string]float32{}
	for _, w := range weights {
		byTerm[w.term] = w.w
	}
	if len(byTerm) != 3 {
		t.Fatalf("expected 3 distinct terms, got %d", len(byTerm))
	}
	if byTerm["a"] != 0.6 || byTerm["b"] != 0.2 || byTerm["c"] != 0.2 {
		t.Errorf("weights = %v", byTerm)
	}
}

func TestTreeCursorExactBatchMultiple(t *testing.T) {
	// Regression: when a term's posting count is an exact multiple of the
	// cursor batch size the range scan used to end without recording a
	// resume point, so the next refill re-yielded the same batch forever.
	for _, n := range []int{cursorBatchSize, cursorBatchSize * 2} {
		kl, err := newKeyedList(newTestPool(t))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := kl.Put("term", float64(n-i), DocID(i), postings.OpAdd, 0); err != nil {
				t.Fatal(err)
			}
		}
		for name, drain := range map[string]func(*treeCursor) (int, error){
			"next": func(c *treeCursor) (int, error) {
				count := 0
				for {
					_, ok, err := c.Next()
					if err != nil || !ok {
						return count, err
					}
					count++
					if count > n {
						return count, nil
					}
				}
			},
			"batch": func(c *treeCursor) (int, error) {
				count := 0
				buf := make([]postings.Entry, 100)
				for {
					got, err := c.NextBatch(buf)
					if err != nil || got == 0 {
						return count, err
					}
					count += got
					if count > n {
						return count, nil
					}
				}
			},
		} {
			count, err := drain(kl.Cursor("term", false))
			if err != nil {
				t.Fatal(err)
			}
			if count != n {
				t.Errorf("%s: cursor with %d postings yielded %d", name, n, count)
			}
		}
	}
}
