package index

import (
	"testing"
)

// TestScoreUpdateLoopHitsPatchPath guards the tentpole fast path end to end:
// for every method, a one-at-a-time UpdateScore loop over known documents
// must be absorbed by the B+-tree's in-place leaf patch (fixed-width table
// rows), and the queries that follow must still rank against the new scores.
// A TablePatches collapse to zero here means the write path silently fell
// back to full leaf rewrites.
func TestScoreUpdateLoopHitsPatchPath(t *testing.T) {
	for name, ctor := range allConstructors() {
		t.Run(name, func(t *testing.T) {
			corpus := smallCorpus()
			m := buildMethod(t, name, ctor, corpus)

			const rounds = 8
			updates := 0
			for r := 1; r <= rounds; r++ {
				for _, doc := range corpus.order {
					// Small drift: scores move but stay in the same chunk /
					// below the threshold most of the time, so the dominant
					// write is the fixed-width Score-table row.
					newScore := corpus.scores[doc] * 1.01
					corpus.scores[doc] = newScore
					if err := m.UpdateScore(doc, newScore); err != nil {
						t.Fatalf("UpdateScore(%d): %v", doc, err)
					}
					updates++
				}
			}
			patches := m.Stats().TablePatches
			if patches == 0 {
				t.Fatalf("%s: %d score updates produced no table patches", name, updates)
			}
			// Every update writes the Score-table row of an existing document
			// with a same-length value, so at minimum the loop's second and
			// later rounds must patch (the ListScore/ListChunk first-touch
			// rows insert once, then patch too).
			if patches < uint64(updates)/2 {
				t.Errorf("%s: only %d of %d updates patched in place", name, patches, updates)
			}

			res, err := m.TopK(Query{Terms: []string{"golden", "gate"}, K: 3})
			if err != nil {
				t.Fatalf("TopK after patched updates: %v", err)
			}
			o := newOracle(corpus)
			checkTopKScores(t, name+" after patched updates", res.Results, o.topK([]string{"golden", "gate"}, 3, false))
		})
	}
}

// TestApplyUpdatesBatchHitsPatchPath is the batched analogue: a score-only
// ApplyUpdates batch flushes through UpsertBatch's replace-only patch runs.
func TestApplyUpdatesBatchHitsPatchPath(t *testing.T) {
	for name, ctor := range allConstructors() {
		t.Run(name, func(t *testing.T) {
			corpus := smallCorpus()
			m := buildMethod(t, name, ctor, corpus)

			var batch []Update
			for r := 0; r < 4; r++ {
				for _, doc := range corpus.order {
					newScore := corpus.scores[doc] * 1.02
					corpus.scores[doc] = newScore
					batch = append(batch, Update{Op: ScoreOp, Doc: doc, Score: newScore})
				}
			}
			if err := m.ApplyUpdates(batch); err != nil {
				t.Fatal(err)
			}
			if m.Stats().TablePatches == 0 {
				t.Fatalf("%s: batched score updates produced no table patches", name)
			}

			res, err := m.TopK(Query{Terms: []string{"golden", "gate"}, K: 3})
			if err != nil {
				t.Fatal(err)
			}
			o := newOracle(corpus)
			checkTopKScores(t, name+" after batched patches", res.Results, o.topK([]string{"golden", "gate"}, 3, false))
		})
	}
}
