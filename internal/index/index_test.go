package index

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/text"
)

// testCorpus is an in-memory DocSource for the correctness tests.
type testCorpus struct {
	docs   map[DocID][]string
	order  []DocID
	scores map[DocID]float64
}

func newTestCorpus() *testCorpus {
	return &testCorpus{docs: map[DocID][]string{}, scores: map[DocID]float64{}}
}

func (c *testCorpus) add(doc DocID, score float64, content string) {
	c.docs[doc] = strings.Fields(content)
	c.scores[doc] = score
	c.order = append(c.order, doc)
}

func (c *testCorpus) NumDocs() int { return len(c.docs) }

func (c *testCorpus) ForEach(fn func(doc DocID, tokens []string) error) error {
	for _, doc := range c.order {
		if err := fn(doc, c.docs[doc]); err != nil {
			return err
		}
	}
	return nil
}

func (c *testCorpus) Tokens(doc DocID) ([]string, error) {
	tokens, ok := c.docs[doc]
	if !ok {
		return nil, fmt.Errorf("test corpus: no document %d", doc)
	}
	return tokens, nil
}

func (c *testCorpus) scoreFunc() ScoreFunc {
	return func(doc DocID) float64 { return c.scores[doc] }
}

// oracle tracks the ground truth state during a randomized workload.
type oracle struct {
	tokens  map[DocID][]string
	scores  map[DocID]float64
	weights map[DocID]map[string]float32
	deleted map[DocID]bool
}

func newOracle(c *testCorpus) *oracle {
	o := &oracle{
		tokens:  map[DocID][]string{},
		scores:  map[DocID]float64{},
		weights: map[DocID]map[string]float32{},
		deleted: map[DocID]bool{},
	}
	for doc, tokens := range c.docs {
		o.setTokens(doc, tokens)
		o.scores[doc] = c.scores[doc]
	}
	return o
}

func (o *oracle) setTokens(doc DocID, tokens []string) {
	o.tokens[doc] = append([]string(nil), tokens...)
	tf := text.TermFrequencies(tokens)
	w := map[string]float32{}
	for term, n := range tf {
		w[term] = text.NormalizedTF(n, len(tokens))
	}
	o.weights[doc] = w
}

func (o *oracle) contains(doc DocID, term string) bool {
	_, ok := o.weights[doc][term]
	return ok
}

// topK computes the expected result scores for a query (SVR-only ranking).
func (o *oracle) topK(terms []string, k int, disjunctive bool) []float64 {
	var scores []float64
	for doc := range o.tokens {
		if o.deleted[doc] {
			continue
		}
		match := 0
		for _, t := range terms {
			if o.contains(doc, t) {
				match++
			}
		}
		ok := match == len(terms)
		if disjunctive {
			ok = match > 0
		}
		if ok {
			scores = append(scores, o.scores[doc])
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	if len(scores) > k {
		scores = scores[:k]
	}
	return scores
}

// topKCombined computes expected combined SVR+term scores.
func (o *oracle) topKCombined(terms []string, idfs map[string]float64, k int, disjunctive bool) []float64 {
	var scores []float64
	for doc := range o.tokens {
		if o.deleted[doc] {
			continue
		}
		match := 0
		combined := o.scores[doc]
		for _, t := range terms {
			if o.contains(doc, t) {
				match++
				combined += text.TFIDF(o.weights[doc][t], idfs[t])
			}
		}
		ok := match == len(terms)
		if disjunctive {
			ok = match > 0
		}
		if ok {
			scores = append(scores, combined)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	if len(scores) > k {
		scores = scores[:k]
	}
	return scores
}

func newTestConfig(tb testing.TB) Config {
	tb.Helper()
	pool := buffer.MustNew(pagefile.MustNewMem(1024), 4096)
	return Config{Pool: pool, ThresholdRatio: 2, ChunkRatio: 2, MinChunkSize: 2, FancyListSize: 4}
}

// allConstructors returns one constructor per method.
func allConstructors() map[string]func(Config) (Method, error) {
	return map[string]func(Config) (Method, error){
		"ID":              func(c Config) (Method, error) { return NewID(c) },
		"Score":           func(c Config) (Method, error) { return NewScore(c) },
		"Score-Threshold": func(c Config) (Method, error) { return NewScoreThreshold(c) },
		"Chunk":           func(c Config) (Method, error) { return NewChunk(c) },
		"ID-TermScore":    func(c Config) (Method, error) { return NewIDTermScore(c) },
		"Chunk-TermScore": func(c Config) (Method, error) { return NewChunkTermScore(c) },
	}
}

func smallCorpus() *testCorpus {
	c := newTestCorpus()
	c.add(1, 87.13, "golden gate bridge news archive")
	c.add(2, 310.5, "golden gate movie amateur film")
	c.add(3, 9100, "breaking news about the golden state")
	c.add(4, 55, "gate repair manual news")
	c.add(5, 1200, "american thrift golden gate classic news")
	c.add(6, 18, "unrelated document about databases")
	c.add(7, 640, "golden news daily gate bulletin")
	c.add(8, 2.5, "gate golden gate golden gate")
	return c
}

func buildMethod(t *testing.T, name string, ctor func(Config) (Method, error), corpus *testCorpus) Method {
	t.Helper()
	m, err := ctor(newTestConfig(t))
	if err != nil {
		t.Fatalf("%s constructor: %v", name, err)
	}
	if m.Name() != name {
		t.Fatalf("method name = %q, want %q", m.Name(), name)
	}
	if err := m.Build(corpus, corpus.scoreFunc()); err != nil {
		t.Fatalf("%s Build: %v", name, err)
	}
	return m
}

func checkTopKScores(t *testing.T, label string, got []Result, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results (%v), want %d (%v)", label, len(got), got, len(want), want)
	}
	for i := range want {
		if got[i].Score != want[i] {
			t.Fatalf("%s: result %d score = %g, want %g (got %v want %v)", label, i, got[i].Score, want[i], got, want)
		}
	}
}

func TestBuildAndBasicConjunctiveQuery(t *testing.T) {
	for name, ctor := range allConstructors() {
		t.Run(name, func(t *testing.T) {
			corpus := smallCorpus()
			m := buildMethod(t, name, ctor, corpus)
			o := newOracle(corpus)

			res, err := m.TopK(Query{Terms: []string{"golden", "gate"}, K: 3})
			if err != nil {
				t.Fatalf("TopK: %v", err)
			}
			checkTopKScores(t, name+" conjunctive", res.Results, o.topK([]string{"golden", "gate"}, 3, false))

			// Every returned document must actually contain both terms.
			for _, r := range res.Results {
				if !o.contains(DocID(r.Doc), "golden") || !o.contains(DocID(r.Doc), "gate") {
					t.Errorf("doc %d returned but does not contain both query terms", r.Doc)
				}
			}
		})
	}
}

func TestDisjunctiveQuery(t *testing.T) {
	for name, ctor := range allConstructors() {
		t.Run(name, func(t *testing.T) {
			corpus := smallCorpus()
			m := buildMethod(t, name, ctor, corpus)
			o := newOracle(corpus)
			res, err := m.TopK(Query{Terms: []string{"news", "databases"}, K: 4, Disjunctive: true})
			if err != nil {
				t.Fatalf("TopK: %v", err)
			}
			checkTopKScores(t, name+" disjunctive", res.Results, o.topK([]string{"news", "databases"}, 4, true))
		})
	}
}

func TestQueryValidation(t *testing.T) {
	corpus := smallCorpus()
	m := buildMethod(t, "Chunk", func(c Config) (Method, error) { return NewChunk(c) }, corpus)
	if _, err := m.TopK(Query{Terms: nil, K: 5}); err == nil {
		t.Error("query with no terms accepted")
	}
	if _, err := m.TopK(Query{Terms: []string{"news"}, K: 0}); err == nil {
		t.Error("query with k=0 accepted")
	}
}

func TestTermScoresUnsupported(t *testing.T) {
	for _, name := range []string{"ID", "Score", "Score-Threshold", "Chunk"} {
		ctor := allConstructors()[name]
		corpus := smallCorpus()
		m := buildMethod(t, name, ctor, corpus)
		if _, err := m.TopK(Query{Terms: []string{"news"}, K: 2, WithTermScores: true}); err != ErrTermScoresUnsupported {
			t.Errorf("%s: term-score query error = %v, want ErrTermScoresUnsupported", name, err)
		}
	}
}

func TestUnknownDocumentUpdate(t *testing.T) {
	for name, ctor := range allConstructors() {
		corpus := smallCorpus()
		m := buildMethod(t, name, ctor, corpus)
		if err := m.UpdateScore(999, 50); err == nil {
			t.Errorf("%s: UpdateScore of unknown doc succeeded", name)
		}
		if err := m.DeleteDocument(999); err == nil {
			t.Errorf("%s: DeleteDocument of unknown doc succeeded", name)
		}
	}
}

func TestQueryForAbsentTerm(t *testing.T) {
	for name, ctor := range allConstructors() {
		corpus := smallCorpus()
		m := buildMethod(t, name, ctor, corpus)
		res, err := m.TopK(Query{Terms: []string{"zzzmissing"}, K: 3})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Results) != 0 {
			t.Errorf("%s: query for absent term returned %d results", name, len(res.Results))
		}
		// Conjunctive query with one absent term must return nothing.
		res, err = m.TopK(Query{Terms: []string{"golden", "zzzmissing"}, K: 3})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Results) != 0 {
			t.Errorf("%s: conjunctive query with absent term returned %d results", name, len(res.Results))
		}
	}
}

func TestScoreUpdatesAreReflectedInResults(t *testing.T) {
	for name, ctor := range allConstructors() {
		t.Run(name, func(t *testing.T) {
			corpus := smallCorpus()
			m := buildMethod(t, name, ctor, corpus)
			o := newOracle(corpus)

			// Doc 8 starts with the lowest score; a dramatic update ("flash
			// crowd") must push it to the top of the golden+gate ranking.
			if err := m.UpdateScore(8, 50000); err != nil {
				t.Fatalf("UpdateScore: %v", err)
			}
			o.scores[8] = 50000
			// Doc 3 drops.
			if err := m.UpdateScore(3, 1); err != nil {
				t.Fatalf("UpdateScore: %v", err)
			}
			o.scores[3] = 1

			res, err := m.TopK(Query{Terms: []string{"golden", "gate"}, K: 3})
			if err != nil {
				t.Fatalf("TopK: %v", err)
			}
			want := o.topK([]string{"golden", "gate"}, 3, false)
			checkTopKScores(t, name, res.Results, want)
			if res.Results[0].Doc != 8 {
				t.Errorf("%s: doc 8 should rank first after its flash-crowd update, got %v", name, res.Results)
			}
		})
	}
}

func TestRandomizedScoreUpdateOracle(t *testing.T) {
	// A randomized torture test of Theorem 1/2: after arbitrary sequences of
	// score updates (including large jumps and decreases), every method must
	// return exactly the top-k under the latest scores.
	vocab := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"}
	rng := rand.New(rand.NewSource(42))

	corpus := newTestCorpus()
	const nDocs = 120
	for i := 0; i < nDocs; i++ {
		nTerms := rng.Intn(5) + 2
		words := make([]string, 0, nTerms)
		for j := 0; j < nTerms; j++ {
			words = append(words, vocab[rng.Intn(len(vocab))])
		}
		corpus.add(DocID(i+1), float64(rng.Intn(100000)), strings.Join(words, " "))
	}

	for name, ctor := range allConstructors() {
		t.Run(name, func(t *testing.T) {
			m := buildMethod(t, name, ctor, corpus)
			o := newOracle(corpus)
			localRng := rand.New(rand.NewSource(7))

			for round := 0; round < 6; round++ {
				// Apply a burst of random score updates.
				for u := 0; u < 40; u++ {
					doc := DocID(localRng.Intn(nDocs) + 1)
					var newScore float64
					switch localRng.Intn(3) {
					case 0: // small perturbation
						newScore = o.scores[doc] + float64(localRng.Intn(200)) - 100
					case 1: // flash crowd
						newScore = o.scores[doc] + float64(localRng.Intn(80000))
					default: // collapse
						newScore = o.scores[doc] / float64(localRng.Intn(10)+1)
					}
					if newScore < 0 {
						newScore = 0
					}
					if err := m.UpdateScore(doc, newScore); err != nil {
						t.Fatalf("UpdateScore(%d, %g): %v", doc, newScore, err)
					}
					o.scores[doc] = newScore
				}
				// Check several queries against the oracle.
				for q := 0; q < 8; q++ {
					nTerms := localRng.Intn(2) + 1
					terms := make([]string, 0, nTerms)
					for j := 0; j < nTerms; j++ {
						terms = append(terms, vocab[localRng.Intn(len(vocab))])
					}
					k := localRng.Intn(10) + 1
					disjunctive := localRng.Intn(2) == 0
					res, err := m.TopK(Query{Terms: terms, K: k, Disjunctive: disjunctive})
					if err != nil {
						t.Fatalf("TopK(%v): %v", terms, err)
					}
					want := o.topK(terms, k, disjunctive)
					checkTopKScores(t, fmt.Sprintf("%s round %d query %v k=%d disj=%v", name, round, terms, k, disjunctive), res.Results, want)
				}
			}
		})
	}
}

func TestCombinedTermScoreOracle(t *testing.T) {
	vocab := []string{"red", "green", "blue", "cyan", "magenta", "yellow"}
	rng := rand.New(rand.NewSource(13))
	corpus := newTestCorpus()
	const nDocs = 80
	for i := 0; i < nDocs; i++ {
		nTerms := rng.Intn(6) + 1
		words := make([]string, 0, nTerms)
		for j := 0; j < nTerms; j++ {
			words = append(words, vocab[rng.Intn(len(vocab))])
		}
		corpus.add(DocID(i+1), float64(rng.Intn(1000)), strings.Join(words, " "))
	}

	ctors := map[string]func(Config) (Method, error){
		"ID-TermScore":    func(c Config) (Method, error) { return NewIDTermScore(c) },
		"Chunk-TermScore": func(c Config) (Method, error) { return NewChunkTermScore(c) },
	}
	for name, ctor := range ctors {
		t.Run(name, func(t *testing.T) {
			m := buildMethod(t, name, ctor, corpus)
			o := newOracle(corpus)
			localRng := rand.New(rand.NewSource(3))

			// Apply some score updates so the combined ranking reflects fresh
			// SVR scores too.
			for u := 0; u < 60; u++ {
				doc := DocID(localRng.Intn(nDocs) + 1)
				newScore := float64(localRng.Intn(5000))
				if err := m.UpdateScore(doc, newScore); err != nil {
					t.Fatalf("UpdateScore: %v", err)
				}
				o.scores[doc] = newScore
			}

			idfs := map[string]float64{}
			stats := text.CollectionStats{NumDocs: int64(nDocs)}
			for _, term := range vocab {
				df := 0
				for doc := range o.tokens {
					if o.contains(doc, term) {
						df++
					}
				}
				idfs[term] = text.IDF(stats, int64(df))
			}

			for q := 0; q < 12; q++ {
				nTerms := localRng.Intn(2) + 1
				terms := make([]string, 0, nTerms)
				for j := 0; j < nTerms; j++ {
					terms = append(terms, vocab[localRng.Intn(len(vocab))])
				}
				k := localRng.Intn(8) + 1
				disjunctive := localRng.Intn(2) == 0
				res, err := m.TopK(Query{Terms: terms, K: k, Disjunctive: disjunctive, WithTermScores: true})
				if err != nil {
					t.Fatalf("TopK: %v", err)
				}
				want := o.topKCombined(terms, idfs, k, disjunctive)
				if len(res.Results) != len(want) {
					t.Fatalf("%s query %v: got %d results, want %d", name, terms, len(res.Results), len(want))
				}
				for i := range want {
					if diff := res.Results[i].Score - want[i]; diff > 1e-6 || diff < -1e-6 {
						t.Fatalf("%s query %v k=%d disj=%v: result %d score %.8f, want %.8f",
							name, terms, k, disjunctive, i, res.Results[i].Score, want[i])
					}
				}
			}
		})
	}
}

func TestInsertDeleteAndContentUpdates(t *testing.T) {
	for name, ctor := range allConstructors() {
		t.Run(name, func(t *testing.T) {
			corpus := smallCorpus()
			m := buildMethod(t, name, ctor, corpus)
			o := newOracle(corpus)

			// Insert a new document; it must be findable immediately.
			newTokens := strings.Fields("golden gate ferry schedule news")
			corpus.add(100, 7000, "golden gate ferry schedule news")
			if err := m.InsertDocument(100, newTokens, 7000); err != nil {
				t.Fatalf("InsertDocument: %v", err)
			}
			o.setTokens(100, newTokens)
			o.scores[100] = 7000

			res, err := m.TopK(Query{Terms: []string{"golden", "gate"}, K: 5})
			if err != nil {
				t.Fatalf("TopK after insert: %v", err)
			}
			checkTopKScores(t, name+" after insert", res.Results, o.topK([]string{"golden", "gate"}, 5, false))
			found := false
			for _, r := range res.Results {
				if r.Doc == 100 {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: inserted document not in results %v", name, res.Results)
			}

			// Delete an existing document; it must disappear.
			if err := m.DeleteDocument(5); err != nil {
				t.Fatalf("DeleteDocument: %v", err)
			}
			o.deleted[5] = true
			res, err = m.TopK(Query{Terms: []string{"golden", "gate"}, K: 5})
			if err != nil {
				t.Fatalf("TopK after delete: %v", err)
			}
			for _, r := range res.Results {
				if r.Doc == 5 {
					t.Errorf("%s: deleted document 5 still returned", name)
				}
			}
			checkTopKScores(t, name+" after delete", res.Results, o.topK([]string{"golden", "gate"}, 5, false))

			// Content update: doc 6 gains the query terms, doc 2 loses them.
			oldTokens6 := corpus.docs[6]
			newTokens6 := strings.Fields("golden gate databases survey")
			if err := m.UpdateContent(6, oldTokens6, newTokens6); err != nil {
				t.Fatalf("UpdateContent: %v", err)
			}
			corpus.docs[6] = newTokens6
			o.setTokens(6, newTokens6)

			oldTokens2 := corpus.docs[2]
			newTokens2 := strings.Fields("amateur film festival")
			if err := m.UpdateContent(2, oldTokens2, newTokens2); err != nil {
				t.Fatalf("UpdateContent: %v", err)
			}
			corpus.docs[2] = newTokens2
			o.setTokens(2, newTokens2)

			res, err = m.TopK(Query{Terms: []string{"golden", "gate"}, K: 6})
			if err != nil {
				t.Fatalf("TopK after content updates: %v", err)
			}
			want := o.topK([]string{"golden", "gate"}, 6, false)
			checkTopKScores(t, name+" after content updates", res.Results, want)
			for _, r := range res.Results {
				if r.Doc == 2 {
					t.Errorf("%s: doc 2 no longer contains the terms but was returned", name)
				}
			}
		})
	}
}

func TestEarlyTerminationBehaviour(t *testing.T) {
	// Build a corpus where one very common term has many postings; the
	// chunked and score-ordered methods should stop early for small k while
	// the ID method must scan everything.
	corpus := newTestCorpus()
	rng := rand.New(rand.NewSource(5))
	const nDocs = 3000
	for i := 0; i < nDocs; i++ {
		content := "common"
		if i%3 == 0 {
			content += " paired"
		}
		corpus.add(DocID(i+1), float64(rng.Intn(100000)), content)
	}

	cfg := func() Config {
		pool := buffer.MustNew(pagefile.MustNewMem(1024), 8192)
		return Config{Pool: pool, ThresholdRatio: 2, ChunkRatio: 2, MinChunkSize: 10, FancyListSize: 8}
	}

	idm, err := NewID(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := idm.Build(corpus, corpus.scoreFunc()); err != nil {
		t.Fatal(err)
	}
	chunk, err := NewChunk(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := chunk.Build(corpus, corpus.scoreFunc()); err != nil {
		t.Fatal(err)
	}
	st, err := NewScoreThreshold(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Build(corpus, corpus.scoreFunc()); err != nil {
		t.Fatal(err)
	}

	q := Query{Terms: []string{"common", "paired"}, K: 10}
	idRes, err := idm.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	chunkRes, err := chunk.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	stRes, err := st.TopK(q)
	if err != nil {
		t.Fatal(err)
	}

	// Same answers.
	checkTopKScores(t, "chunk vs id", chunkRes.Results, resultScores(idRes.Results))
	checkTopKScores(t, "score-threshold vs id", stRes.Results, resultScores(idRes.Results))

	if idRes.Stopped {
		t.Error("ID method reported early termination; it must always scan the whole list")
	}
	if !chunkRes.Stopped {
		t.Error("Chunk method did not terminate early on a small-k query")
	}
	if !stRes.Stopped {
		t.Error("Score-Threshold method did not terminate early on a small-k query")
	}
	if chunkRes.PostingsScanned >= idRes.PostingsScanned {
		t.Errorf("Chunk scanned %d postings, ID scanned %d; Chunk should scan fewer", chunkRes.PostingsScanned, idRes.PostingsScanned)
	}
	if stRes.PostingsScanned >= idRes.PostingsScanned {
		t.Errorf("Score-Threshold scanned %d postings, ID scanned %d; Score-Threshold should scan fewer", stRes.PostingsScanned, idRes.PostingsScanned)
	}
}

func resultScores(rs []Result) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.Score
	}
	return out
}

func TestStatsAndSizes(t *testing.T) {
	corpus := smallCorpus()
	sizes := map[string]uint64{}
	for name, ctor := range allConstructors() {
		m := buildMethod(t, name, ctor, corpus)
		s := m.Stats()
		if s.Method != name {
			t.Errorf("Stats.Method = %q, want %q", s.Method, name)
		}
		if s.LongListBytes == 0 {
			t.Errorf("%s: LongListBytes is zero after build", name)
		}
		sizes[name] = s.LongListBytes
		if err := m.UpdateScore(1, 500); err != nil {
			t.Fatal(err)
		}
		if got := m.Stats().ScoreUpdates; got != 1 {
			t.Errorf("%s: ScoreUpdates = %d, want 1", name, got)
		}
	}
	// Table 1's qualitative ordering: Score > Score-Threshold > ID (Score
	// stores updatable lists with scores; Score-Threshold stores scores in
	// immutable lists; ID stores bare d-gapped IDs).  TermScore variants
	// exceed their score-free counterparts.
	if !(sizes["Score"] > sizes["Score-Threshold"]) {
		t.Errorf("size ordering violated: Score (%d) should exceed Score-Threshold (%d)", sizes["Score"], sizes["Score-Threshold"])
	}
	if !(sizes["Score-Threshold"] > sizes["ID"]) {
		t.Errorf("size ordering violated: Score-Threshold (%d) should exceed ID (%d)", sizes["Score-Threshold"], sizes["ID"])
	}
	if !(sizes["ID-TermScore"] > sizes["ID"]) {
		t.Errorf("size ordering violated: ID-TermScore (%d) should exceed ID (%d)", sizes["ID-TermScore"], sizes["ID"])
	}
	if !(sizes["Chunk-TermScore"] > sizes["Chunk"]) {
		t.Errorf("size ordering violated: Chunk-TermScore (%d) should exceed Chunk (%d)", sizes["Chunk-TermScore"], sizes["Chunk"])
	}
}

func TestUpdateCostAsymmetry(t *testing.T) {
	// The Score method must touch the long lists on every update; the ID and
	// Chunk methods must not (for updates within the chunk threshold).
	corpus := smallCorpus()
	idm := buildMethod(t, "ID", func(c Config) (Method, error) { return NewID(c) }, corpus)
	score := buildMethod(t, "Score", func(c Config) (Method, error) { return NewScore(c) }, corpus)
	chunk := buildMethod(t, "Chunk", func(c Config) (Method, error) { return NewChunk(c) }, corpus)

	// Small update: stays within a factor-2 chunk.
	if err := idm.UpdateScore(1, 88); err != nil {
		t.Fatal(err)
	}
	if err := score.UpdateScore(1, 88); err != nil {
		t.Fatal(err)
	}
	if err := chunk.UpdateScore(1, 88); err != nil {
		t.Fatal(err)
	}

	if got := idm.Stats().ShortListPostingsWritten + idm.Stats().LongListPostingsWritten; got != 0 {
		t.Errorf("ID method wrote %d postings for a score update, want 0", got)
	}
	if got := chunk.Stats().ShortListPostingsWritten; got != 0 {
		t.Errorf("Chunk method wrote %d short-list postings for a small update, want 0", got)
	}
	if got := score.Stats().LongListPostingsWritten; got == 0 {
		t.Error("Score method wrote no long-list postings for a score update; it must rewrite every term's posting")
	}

	// Large update: the Chunk method must now rewrite the short lists.
	if err := chunk.UpdateScore(8, 99999); err != nil {
		t.Fatal(err)
	}
	if got := chunk.Stats().ShortListPostingsWritten; got == 0 {
		t.Error("Chunk method wrote no short-list postings for a two-chunk jump")
	}
}
