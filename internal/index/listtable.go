package index

import (
	"svrdb/internal/codec"
	"svrdb/internal/storage/btree"
	"svrdb/internal/storage/buffer"
)

// listTable implements both the ListScore table of the Score-Threshold
// method and the ListChunk table of the Chunk family: one row per document
// whose score has been updated since the long lists were built, recording
// the document's current position in the inverted lists (its stale list
// score, or its list chunk ID stored as a float) and whether postings for it
// have been written to the short lists.
type listTable struct {
	tree *btree.Tree
}

// listEntry is one row of a listTable.
type listEntry struct {
	// Key is the document's list score (Score-Threshold) or list chunk ID
	// (Chunk family, stored as float64(cid)).
	Key float64
	// InShortList reports whether the document has postings in the short
	// lists (its score crossed the threshold at some point).
	InShortList bool
}

func newListTable(pool *buffer.Pool) (*listTable, error) {
	tree, err := btree.New(pool)
	if err != nil {
		return nil, err
	}
	return &listTable{tree: tree}, nil
}

func listTableKey(doc DocID) []byte {
	return codec.PutOrderedUint64(nil, uint64(doc))
}

// Get returns the entry for doc, if any.
func (t *listTable) Get(doc DocID) (listEntry, bool, error) {
	data, ok, err := t.tree.Get(listTableKey(doc))
	if err != nil || !ok {
		return listEntry{}, false, err
	}
	key, n, err := codec.Float64(data)
	if err != nil {
		return listEntry{}, false, err
	}
	inShort := n < len(data) && data[n] == 1
	return listEntry{Key: key, InShortList: inShort}, true, nil
}

// Put inserts or replaces the entry for doc.
func (t *listTable) Put(doc DocID, e listEntry) error {
	val := codec.PutFloat64(nil, e.Key)
	if e.InShortList {
		val = append(val, 1)
	} else {
		val = append(val, 0)
	}
	return t.tree.Put(listTableKey(doc), val)
}

// Delete removes the entry for doc (used when a deleted document's ID is
// reused).
func (t *listTable) Delete(doc DocID) error {
	_, err := t.tree.Delete(listTableKey(doc))
	return err
}

// Len reports the number of entries.
func (t *listTable) Len() int { return t.tree.Len() }
