package index

import (
	"svrdb/internal/codec"
	"svrdb/internal/storage/btree"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
)

// listTable implements both the ListScore table of the Score-Threshold
// method and the ListChunk table of the Chunk family: one row per document
// whose score has been updated since the long lists were built, recording
// the document's current position in the inverted lists (its stale list
// score, or its list chunk ID stored as a float) and whether postings for it
// have been written to the short lists.
// During a write batch the table runs in staged mode like scoreTable: Put
// and Delete collect in an overlay that Get consults first, and flushBatch
// applies the overlay as one sorted UpsertBatch / DeleteBatch pair.
// Rows are fixed-width (8-byte key, 9-byte value), so Put over an existing
// document — the common case in Algorithm 1, where a score update moves a
// document's recorded list position — hits the tree's in-place patch path.
type listTable struct {
	tree *btree.Tree
	// retire receives superseded pages once COW snapshots are enabled.
	retire func(pagefile.PageID)

	staged bool
	// pending maps a document to its staged entry; a nil value is a staged
	// delete.
	pending map[DocID]*listEntry
}

// listEntry is one row of a listTable.
type listEntry struct {
	// Key is the document's list score (Score-Threshold) or list chunk ID
	// (Chunk family, stored as float64(cid)).
	Key float64
	// InShortList reports whether the document has postings in the short
	// lists (its score crossed the threshold at some point).
	InShortList bool
}

func newListTable(pool *buffer.Pool) (*listTable, error) {
	tree, err := btree.New(pool)
	if err != nil {
		return nil, err
	}
	return &listTable{tree: tree}, nil
}

// enableCOW switches the table's tree to copy-on-write publication.
func (t *listTable) enableCOW(retire func(pagefile.PageID)) {
	t.retire = retire
	t.tree.EnableCOW(retire)
}

// snapshotView seals the tree and captures a frozen listView for
// publication.
func (t *listTable) snapshotView() listView {
	t.tree.Seal()
	return listView{view: t.tree.View(), patches: t.tree.Patches(), len: t.tree.Len()}
}

// listView is a frozen, read-only image of a listTable.
type listView struct {
	view    btree.View
	patches uint64
	len     int
}

// Get returns the entry for doc in the view, if any.
func (v listView) Get(doc DocID) (listEntry, bool, error) {
	data, ok, err := v.view.Get(listTableKey(doc))
	if err != nil || !ok {
		return listEntry{}, false, err
	}
	e, err := decodeListEntry(data)
	if err != nil {
		return listEntry{}, false, err
	}
	return e, true, nil
}

// newProbe returns a per-query locality-aware reader pinned to the view.
func (v listView) newProbe() *listProbe { return &listProbe{p: v.view.NewProbe()} }

// Len reports the entry count at capture time.
func (v listView) Len() int { return v.len }

// Patches reports the in-place patch count at capture time.
func (v listView) Patches() uint64 { return v.patches }

func listTableKey(doc DocID) []byte {
	return codec.PutOrderedUint64(nil, uint64(doc))
}

// Get returns the entry for doc, if any.
func (t *listTable) Get(doc DocID) (listEntry, bool, error) {
	if t.staged {
		if e, hit := t.pending[doc]; hit {
			if e == nil {
				return listEntry{}, false, nil
			}
			return *e, true, nil
		}
	}
	data, ok, err := t.tree.Get(listTableKey(doc))
	if err != nil || !ok {
		return listEntry{}, false, err
	}
	e, err := decodeListEntry(data)
	if err != nil {
		return listEntry{}, false, err
	}
	return e, true, nil
}

func decodeListEntry(data []byte) (listEntry, error) {
	key, n, err := codec.Float64(data)
	if err != nil {
		return listEntry{}, err
	}
	return listEntry{Key: key, InShortList: n < len(data) && data[n] == 1}, nil
}

func encodeListEntry(e listEntry) []byte {
	val := codec.PutFloat64(nil, e.Key)
	if e.InShortList {
		val = append(val, 1)
	} else {
		val = append(val, 0)
	}
	return val
}

// Put inserts or replaces the entry for doc.
func (t *listTable) Put(doc DocID, e listEntry) error {
	if t.staged {
		t.pending[doc] = &e
		return nil
	}
	return t.tree.Put(listTableKey(doc), encodeListEntry(e))
}

// Delete removes the entry for doc (used when a deleted document's ID is
// reused).
func (t *listTable) Delete(doc DocID) error {
	if t.staged {
		t.pending[doc] = nil
		return nil
	}
	_, err := t.tree.Delete(listTableKey(doc))
	return err
}

// listProbe is the per-query locality-aware reader of a listTable,
// mirroring scoreProbe.
type listProbe struct {
	p *btree.Probe
}

func (t *listTable) newProbe() *listProbe { return &listProbe{p: t.tree.NewProbe()} }

// Get mirrors listTable.Get through the probe.
func (lp *listProbe) Get(doc DocID) (listEntry, bool, error) {
	data, ok, err := lp.p.Get(listTableKey(doc))
	if err != nil || !ok {
		return listEntry{}, false, err
	}
	e, err := decodeListEntry(data)
	if err != nil {
		return listEntry{}, false, err
	}
	return e, true, nil
}

// beginBatch enters staged mode.
func (t *listTable) beginBatch() {
	t.staged = true
	if t.pending == nil {
		t.pending = map[DocID]*listEntry{}
	}
}

// flushBatch applies the overlay to the tree with grouped writes (the
// batch ops sort the keys themselves) and leaves staged mode.
func (t *listTable) flushBatch() error {
	t.staged = false
	if len(t.pending) == 0 {
		return nil
	}
	items := make([]btree.Item, 0, len(t.pending))
	var dels [][]byte
	for doc, e := range t.pending {
		if e != nil {
			items = append(items, btree.Item{Key: listTableKey(doc), Value: encodeListEntry(*e)})
		} else {
			dels = append(dels, listTableKey(doc))
		}
	}
	clear(t.pending)
	if _, err := t.tree.UpsertBatch(items); err != nil {
		return err
	}
	if len(dels) > 0 {
		if _, err := t.tree.DeleteBatch(dels); err != nil {
			return err
		}
	}
	return nil
}

// Len reports the number of entries.
func (t *listTable) Len() int { return t.tree.Len() }

// Patches reports how many writes the table's tree absorbed in place.
func (t *listTable) Patches() uint64 { return t.tree.Patches() }
