package index

import (
	"fmt"
	"math/rand"
	"testing"
)

// This file holds the batch-write equivalence property test: for every
// method, applying a shuffled mixed update trace through ApplyUpdates (in
// arbitrary chunk sizes) must leave the index answering every query exactly
// as if the same trace had been applied one call at a time.

// traceVocab is a tiny vocabulary that guarantees dense posting lists, so
// the trace exercises collisions between updates of different documents on
// the same terms.
var traceVocab = []string{"golden", "gate", "news", "archive", "film", "bridge", "database", "classic"}

// genDoc produces a deterministic pseudo-document over traceVocab.
func genDoc(rng *rand.Rand) string {
	n := 3 + rng.Intn(6)
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += traceVocab[rng.Intn(len(traceVocab))]
	}
	return out
}

// genTrace builds a shuffled mixed trace over the corpus: mostly score
// updates (with steps large enough to cross thresholds and chunks), plus
// document inserts, content updates and deletes.  The corpus is kept in
// sync with the trace (inserted documents are added, content updates
// replace tokens) the way a live base table would be, since the methods
// read document content back through their DocSource.
func genTrace(rng *rand.Rand, corpus *testCorpus, n int) []Update {
	ids := append([]DocID(nil), corpus.order...)
	nextID := DocID(1000)
	var trace []Update
	for len(trace) < n {
		switch r := rng.Float64(); {
		case r < 0.70: // score update
			doc := ids[rng.Intn(len(ids))]
			old := corpus.scores[doc]
			// Mix small drifts with big jumps that cross thresholds/chunks.
			var score float64
			if rng.Intn(2) == 0 {
				score = old * (0.8 + rng.Float64()*0.4)
			} else {
				score = old * rng.Float64() * 8
			}
			corpus.scores[doc] = score
			trace = append(trace, Update{Op: ScoreOp, Doc: doc, Score: score})
		case r < 0.82: // insert
			doc := nextID
			nextID++
			content := genDoc(rng)
			score := rng.Float64() * 5000
			corpus.add(doc, score, content)
			ids = append(ids, doc)
			trace = append(trace, Update{Op: InsertOp, Doc: doc, Tokens: splitWords(content), Score: score})
		case r < 0.94: // content update
			doc := ids[rng.Intn(len(ids))]
			newTokens := splitWords(genDoc(rng))
			trace = append(trace, Update{Op: ContentOp, Doc: doc, OldTokens: corpus.docs[doc], NewTokens: newTokens})
			corpus.docs[doc] = newTokens
		default: // delete (keep a handful of documents live)
			if len(ids) < 5 {
				continue
			}
			i := rng.Intn(len(ids))
			doc := ids[i]
			ids = append(ids[:i], ids[i+1:]...)
			trace = append(trace, Update{Op: DeleteOp, Doc: doc})
		}
	}
	return trace
}

func splitWords(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return out
}

// equivalenceQueries probes the index from several angles; the results must
// match exactly between the sequential and the batched index.
func equivalenceQueries(withTermScores bool) []Query {
	qs := []Query{
		{Terms: []string{"golden", "gate"}, K: 3},
		{Terms: []string{"golden", "gate"}, K: 100},
		{Terms: []string{"news"}, K: 10},
		{Terms: []string{"news", "archive", "film"}, K: 5, Disjunctive: true},
		{Terms: []string{"bridge", "database"}, K: 1},
		{Terms: []string{"classic", "film"}, K: 50, Disjunctive: true},
	}
	if withTermScores {
		for _, q := range qs[:3] {
			q.WithTermScores = true
			qs = append(qs, q)
		}
	}
	return qs
}

func renderResults(res *QueryResult) string {
	out := ""
	for _, r := range res.Results {
		out += fmt.Sprintf("(%d %.9g)", r.Doc, r.Score)
	}
	return out
}

// TestApplyUpdatesMatchesSequential is the batch-write equivalence property
// test: for every method and several random traces and chunkings, the
// batched pipeline must be indistinguishable from one-at-a-time application
// through every query it can answer.
func TestApplyUpdatesMatchesSequential(t *testing.T) {
	for name, ctor := range allConstructors() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				rng := rand.New(rand.NewSource(seed))

				seqCorpus := smallCorpus()
				batCorpus := smallCorpus()
				seq := buildMethod(t, name, ctor, seqCorpus)
				bat := buildMethod(t, name, ctor, batCorpus)

				// The same shuffled trace for both; genTrace is driven by its
				// own rng so both sides see identical updates.
				trace := genTrace(rand.New(rand.NewSource(seed*101)), seqCorpus, 120)
				// The corpora must agree on content updates (the methods read
				// tokens back through DocSource on some paths).
				syncCorpus(batCorpus, seqCorpus)

				for _, u := range trace {
					if err := applyOne(seq, u); err != nil {
						t.Fatalf("seed %d: sequential %v on doc %d: %v", seed, u.Op, u.Doc, err)
					}
				}
				for lo := 0; lo < len(trace); {
					hi := lo + 1 + rng.Intn(40)
					if hi > len(trace) {
						hi = len(trace)
					}
					if err := bat.ApplyUpdates(trace[lo:hi]); err != nil {
						t.Fatalf("seed %d: ApplyUpdates[%d:%d]: %v", seed, lo, hi, err)
					}
					lo = hi
				}

				withTS := name == "ID-TermScore" || name == "Chunk-TermScore"
				for qi, q := range equivalenceQueries(withTS) {
					seqRes, err := seq.TopK(q)
					if err != nil {
						t.Fatalf("seed %d query %d: sequential TopK: %v", seed, qi, err)
					}
					batRes, err := bat.TopK(q)
					if err != nil {
						t.Fatalf("seed %d query %d: batched TopK: %v", seed, qi, err)
					}
					if got, want := renderResults(batRes), renderResults(seqRes); got != want {
						t.Errorf("seed %d query %d (%v): batched results %s != sequential %s", seed, qi, q.Terms, got, want)
					}
				}

				ss, bs := seq.Stats(), bat.Stats()
				if ss.ShortListEntries != bs.ShortListEntries {
					t.Errorf("seed %d: short-list entries %d (batched) != %d (sequential)", seed, bs.ShortListEntries, ss.ShortListEntries)
				}
			}
		})
	}
}

// syncCorpus makes dst's documents identical to src's (trace generation
// mutates the sequential corpus's view of content; both indexes must read
// the same tokens back through their DocSource).
func syncCorpus(dst, src *testCorpus) {
	dst.docs = map[DocID][]string{}
	for doc, tokens := range src.docs {
		dst.docs[doc] = append([]string(nil), tokens...)
	}
	dst.scores = map[DocID]float64{}
	for doc, s := range src.scores {
		dst.scores[doc] = s
	}
	dst.order = append([]DocID(nil), src.order...)
}

// TestApplyUpdatesEmptyAndSingle covers the degenerate batch shapes.
func TestApplyUpdatesEmptyAndSingle(t *testing.T) {
	for name, ctor := range allConstructors() {
		t.Run(name, func(t *testing.T) {
			corpus := smallCorpus()
			m := buildMethod(t, name, ctor, corpus)
			if err := m.ApplyUpdates(nil); err != nil {
				t.Fatalf("empty batch: %v", err)
			}
			if err := m.ApplyUpdates([]Update{{Op: ScoreOp, Doc: 1, Score: 500}}); err != nil {
				t.Fatalf("single-op batch: %v", err)
			}
			res, err := m.TopK(Query{Terms: []string{"golden", "gate"}, K: 3})
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, r := range res.Results {
				if r.Doc == 1 && r.Score == 500 {
					found = true
				}
			}
			if !found {
				t.Errorf("batched score update not visible in query results: %v", res.Results)
			}
		})
	}
}

// TestApplyUpdatesErrorContinues checks that a failing update mid-batch is
// reported but does not abort the batch: the surrounding updates all apply,
// mirroring the engine's eager maintenance (which records an error per
// failing event and keeps going).
func TestApplyUpdatesErrorContinues(t *testing.T) {
	corpus := smallCorpus()
	m := buildMethod(t, "Chunk", func(c Config) (Method, error) { return NewChunk(c) }, corpus)
	batch := []Update{
		{Op: ScoreOp, Doc: 1, Score: 777},
		{Op: ScoreOp, Doc: 99999, Score: 1}, // unknown document: errors
		{Op: ScoreOp, Doc: 2, Score: 888},   // must still apply
	}
	if err := m.ApplyUpdates(batch); err == nil {
		t.Fatal("batch with unknown document did not error")
	}
	res, err := m.TopK(Query{Terms: []string{"golden", "gate"}, K: 8})
	if err != nil {
		t.Fatal(err)
	}
	var s1, s2 float64
	for _, r := range res.Results {
		if r.Doc == 1 {
			s1 = r.Score
		}
		if r.Doc == 2 {
			s2 = r.Score
		}
	}
	if s1 != 777 {
		t.Errorf("doc 1 score = %g, want 777 (update before the error must be applied)", s1)
	}
	if s2 != 888 {
		t.Errorf("doc 2 score = %g, want 888 (update after the error must still be applied)", s2)
	}
}
