package index

import (
	"fmt"
	"math"

	"svrdb/internal/postings"
	"svrdb/internal/storage/blob"
	"svrdb/internal/text"
	"svrdb/internal/topk"
)

// ChunkTermScoreMethod implements the Chunk-TermScore method of §4.3.3: the
// Chunk method extended to rank by a combination of the SVR score and
// IR-style term scores, F(d) = svr(d) + Σ_i termScore_i(d).
//
// Two additions make that possible while keeping score updates cheap:
// every posting in the long and short lists carries the document's
// normalized term weight, and each term has a small ID-ordered "fancy list"
// of the postings with the highest term weights (following Long & Suel's
// Fancy-ID organization, adapted here to chunk-ordered lists).  Queries run
// Algorithm 3: the fancy lists are merged first to seed the result heap and
// the remainList, then the chunked lists are scanned top chunk first, and
// the query stops once neither the remaining chunks nor the remainList can
// produce a better combined score.
type ChunkTermScoreMethod struct {
	*ChunkMethod
	// fancyRefs/fancyMinW are replaced wholesale on build and merge (never
	// mutated in place) because published snapshots share them by pointer.
	fancyRefs  map[string]blob.Ref
	fancyMinW  map[string]float32
	fancyBytes uint64
}

// NewChunkTermScore creates a Chunk-TermScore index.
func NewChunkTermScore(cfg Config) (*ChunkTermScoreMethod, error) {
	inner, err := NewChunk(cfg)
	if err != nil {
		return nil, err
	}
	m := &ChunkTermScoreMethod{
		ChunkMethod: inner,
		fancyRefs:   map[string]blob.Ref{},
		fancyMinW:   map[string]float32{},
	}
	m.initSnapshots()
	return m, nil
}

// initSnapshots replaces the embedded Chunk method's publication hook with
// one that also captures the fancy-list state, and republishes.
func (m *ChunkTermScoreMethod) initSnapshots() {
	m.ChunkMethod.initSnapshots()
	m.fillExtra = func(s *snap) {
		m.fillChunkSnap(s)
		s.fancyRefs = m.fancyRefs
		s.fancyMinW = m.fancyMinW
		s.fancyBytes = m.fancyBytes
	}
	m.publish()
}

// Name implements Method.
func (m *ChunkTermScoreMethod) Name() string { return "Chunk-TermScore" }

// Build implements Method.
func (m *ChunkTermScoreMethod) Build(src DocSource, scores ScoreFunc) error {
	defer m.publish()
	m.src = src
	bc, err := accumulate(src, scores, m.dict)
	if err != nil {
		return err
	}
	if err := m.populateScoreTable(bc); err != nil {
		return err
	}
	m.chunks = buildChunker(bc.allScores(), m.cfg.ChunkRatio, m.cfg.MinChunkSize)
	// Snapshots share these maps by pointer: accumulate locally, swap in
	// wholesale.
	refs := make(map[string]blob.Ref, len(bc.termDocs))
	fancyRefs := make(map[string]blob.Ref, len(bc.termDocs))
	fancyMinW := make(map[string]float32, len(bc.termDocs))
	for _, term := range bc.terms() {
		builder := postings.NewChunkedEncoder(!m.cfg.Uncompressed, true)
		cids, byChunk := bc.chunked(term, m.chunks)
		for _, cid := range cids {
			if err := builder.AddChunk(cid, byChunk[cid]); err != nil {
				return fmt.Errorf("index: build Chunk-TermScore list for %q: %w", term, err)
			}
		}
		data := builder.Bytes()
		ref, err := m.store.Put(data)
		if err != nil {
			return err
		}
		refs[term] = ref
		m.longBytes += uint64(len(data))
		m.longRawBytes += uint64(builder.Len())*rawBytesIDTermPosting + uint64(builder.Chunks())*rawBytesChunkHeader

		// Fancy list: the FancyListSize postings with the highest term
		// weights, stored in ID order.
		fancyPosts, minW := bc.fancy(term, m.cfg.FancyListSize)
		fb := postings.NewIDTermEncoder(!m.cfg.Uncompressed)
		for _, dw := range fancyPosts {
			if err := fb.Add(dw.doc, dw.w); err != nil {
				return fmt.Errorf("index: build fancy list for %q: %w", term, err)
			}
		}
		fdata := fb.Bytes()
		fref, err := m.store.Put(fdata)
		if err != nil {
			return err
		}
		fancyRefs[term] = fref
		fancyMinW[term] = minW
		m.fancyBytes += uint64(len(fdata))
		m.longRawBytes += uint64(fb.Len()) * rawBytesIDTermPosting
	}
	m.longRefs = refs
	m.fancyRefs = fancyRefs
	m.fancyMinW = fancyMinW
	return nil
}

// ApplyUpdates implements Method: identical to the Chunk method's batch
// path (the fancy lists are read-only between merges, so a batch touches
// the same three updatable structures).
func (m *ChunkTermScoreMethod) ApplyUpdates(batch []Update) error {
	return m.runBatch(m, batch, m.score, m.short, m.listChunk)
}

// TopK implements Method (Algorithm 3).  Plain SVR-only queries (without
// term scores) fall back to the Chunk algorithm over the same lists.
func (m *ChunkTermScoreMethod) TopK(q Query) (*QueryResult, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if !q.WithTermScores {
		return m.ChunkMethod.TopK(q)
	}
	s, guard, err := m.acquire()
	if err != nil {
		return nil, err
	}
	defer guard.Leave()
	m.counters.queries.Add(1)

	ctx := newQueryCtx()
	defer ctx.release()
	for i, term := range q.Terms {
		idf := s.queryIDF(&q, i)
		ctx.idfs = append(ctx.idfs, idf)
		// ε_i · idf_i, the per-term cap for unseen docs.  Under a global idf
		// override the cap stays sound: fancyMinW still bounds this shard's
		// unseen term weights, and idf is the same factor applied everywhere.
		ctx.epsilons = append(ctx.epsilons, text.TFIDF(s.fancyMinW[term], idf))
	}
	idfs, epsilons := ctx.idfs, ctx.epsilons
	epsilonSum := 0.0
	for _, e := range epsilons {
		epsilonSum += e
	}

	heap := topk.New(q.K)
	res := &QueryResult{}
	// Fancy lists and chunked lists both yield candidates in ascending
	// document order (per chunk), so their score resolution runs through
	// leaf-locality probes; checkStop's remainList pruning probes documents
	// in arbitrary order and keeps the plain lookups.
	fancyScores := s.score.newProbe()
	resolve := probedChunkResolver(s)

	// Phase 1 (Algorithm 3 lines 8-9): merge the fancy lists.  Documents
	// present in every fancy list have exact combined scores and seed the
	// heap; documents present in only some go to the remainList with the
	// term weights learned so far.
	type remainInfo struct {
		known map[int]float64 // term index -> exact tf-idf contribution
	}
	remain := map[DocID]*remainInfo{}

	for _, term := range q.Terms {
		it, err := m.fancyIterator(s, term)
		if err != nil {
			return nil, err
		}
		ctx.streams = append(ctx.streams, it)
	}
	fancyMerger := postings.NewGroupMerger(ctx.streams...)
	defer fancyMerger.Close()
	for {
		g, ok, err := fancyMerger.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		res.PostingsScanned += g.Count
		if g.ContainsAll() {
			svr, deleted, ok, err := fancyScores.Get(g.Doc)
			if err != nil {
				return nil, err
			}
			include := ok && !deleted
			if include {
				combined := svr
				for i, present := range g.Present {
					if present {
						combined += text.TFIDF(g.Entries[i].TermScore, idfs[i])
					}
				}
				heap.Add(int64(g.Doc), combined)
				res.ScoreLookups++
			}
			continue
		}
		info := &remainInfo{known: map[int]float64{}}
		for i, present := range g.Present {
			if present {
				info.known[i] = text.TFIDF(g.Entries[i].TermScore, idfs[i])
			}
		}
		remain[g.Doc] = info
	}

	// Phase 2 (lines 10-34): scan the chunked lists top chunk first.  The
	// fancy merger copied its stream references into its own heads, so the
	// context's stream slice can be reused for this phase.
	ctx.streams = ctx.streams[:0]
	for _, term := range q.Terms {
		long, err := m.longIterator(s, term)
		if err != nil {
			return nil, err
		}
		short, err := s.lists.Iterator(term)
		if err != nil {
			return nil, err
		}
		ctx.streams = append(ctx.streams, combinedStream(short, long))
	}
	merger := postings.NewGroupMerger(ctx.streams...)
	defer merger.Close()
	lastCID := int32(math.MinInt32)
	haveCID := false

	checkStop := func(cidJustFinished int32) (bool, error) {
		min, full := heap.MinScore()
		if !full {
			return false, nil
		}
		// The SVR score of any document not yet reached is below the upper
		// bound of the chunk one above the chunks still to be scanned.
		svrBound := s.chunks.UpperBound(cidJustFinished)
		// Prune remainList entries that can no longer win.
		for doc, info := range remain {
			svr, present, err := s.currentScore(doc)
			if err != nil {
				return false, err
			}
			res.ScoreLookups++
			if !present {
				delete(remain, doc)
				continue
			}
			bound := svr
			for i := range q.Terms {
				if known, ok := info.known[i]; ok {
					bound += known
				} else {
					bound += epsilons[i]
				}
			}
			if bound <= min {
				delete(remain, doc)
			}
		}
		if len(remain) > 0 {
			return false, nil
		}
		return svrBound+epsilonSum <= min, nil
	}

	for {
		g, ok, err := merger.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		res.PostingsScanned += g.Count
		cid := int32(g.SortKey)
		if haveCID && cid < lastCID {
			stop, err := checkStop(lastCID)
			if err != nil {
				return nil, err
			}
			if stop {
				res.Stopped = true
				break
			}
		}
		lastCID, haveCID = cid, true

		// The document is now being processed through its regular postings,
		// so it no longer needs to be remembered separately (line 12).
		delete(remain, g.Doc)

		matches := g.ContainsAll() || (q.Disjunctive && g.Count >= 1)
		if !matches {
			continue
		}
		svr, include, err := resolve(g)
		if err != nil {
			return nil, err
		}
		res.ScoreLookups++
		if !include {
			continue
		}
		combined := svr
		for i, present := range g.Present {
			if present {
				combined += text.TFIDF(g.Entries[i].TermScore, idfs[i])
			}
		}
		heap.Add(int64(g.Doc), combined)
	}

	res.Results = heap.Results()
	m.counters.postingsScanned.Add(uint64(res.PostingsScanned))
	return res, nil
}

func (m *ChunkTermScoreMethod) fancyIterator(s *snap, term string) (postings.BatchIterator, error) {
	ref, ok := s.fancyRefs[term]
	if !ok {
		return postings.NewSliceIterator(nil), nil
	}
	return postings.NewStreamIDTermList(m.store.NewReader(ref))
}

// Stats implements Method; LongListBytes includes the fancy lists since they
// are part of the read-only structure rebuilt offline.
func (m *ChunkTermScoreMethod) Stats() Stats {
	sn, guard, err := m.acquire()
	if err != nil {
		return Stats{Method: m.Name()}
	}
	defer guard.Leave()
	s := Stats{
		Method:           m.Name(),
		LongListBytes:    sn.longBytes + sn.fancyBytes,
		LongListRawBytes: sn.longRawBytes,
		ShortListEntries: sn.lists.Len(),
		TablePatches:     sn.score.Patches() + sn.table.Patches() + sn.lists.Patches(),
	}
	m.counters.fill(&s)
	m.fillPoolStats(&s)
	m.fillEpochStats(&s)
	return s
}
