package index

import (
	"fmt"

	"svrdb/internal/postings"
	"svrdb/internal/storage/blob"
	"svrdb/internal/text"
)

// ChunkMethod implements the Chunk method of §4.3.2, the best-performing
// structure in the paper's evaluation.
//
// At build time the documents are partitioned into chunks by score (chunk
// boundaries follow the score distribution with ratio chunkRatio and a
// minimum chunk size).  Each term's long list stores its postings grouped by
// descending chunk ID, in ascending document-ID order within a chunk; the
// chunk ID is stored once per chunk and no score is stored at all, so the
// long lists are essentially as small as the ID method's (Table 1).  A
// document's short-list postings are rewritten only when its score climbs at
// least two chunks above its list chunk (thresholdValueOf(c) = c + 1), and
// queries scan chunks from the top down, continuing one chunk past the point
// where k results were found to compensate for the slack.
type ChunkMethod struct {
	*base
	short       *keyedList
	listChunk   *listTable
	chunks      *chunker
	knownTokens map[DocID][]string
}

// NewChunk creates a Chunk-method index with the configured chunk ratio and
// minimum chunk size.
func NewChunk(cfg Config) (*ChunkMethod, error) {
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	short, err := newKeyedList(b.cfg.Pool)
	if err != nil {
		return nil, err
	}
	lc, err := newListTable(b.cfg.Pool)
	if err != nil {
		return nil, err
	}
	m := &ChunkMethod{base: b, short: short, listChunk: lc, knownTokens: map[DocID][]string{}}
	m.initSnapshots()
	return m, nil
}

// initSnapshots wires the short lists and the ListChunk table into the
// epoch machinery and publishes the initial snapshot; also used after
// Restore and after a merge replaces the structures.  The Chunk-TermScore
// method layers its own fillExtra on top of this one.
func (m *ChunkMethod) initSnapshots() {
	m.short.enableCOW(m.retirePage)
	m.listChunk.enableCOW(m.retirePage)
	m.fillExtra = func(s *snap) { m.fillChunkSnap(s) }
	m.publish()
}

func (m *ChunkMethod) fillChunkSnap(s *snap) {
	s.lists = m.short.snapshotView()
	s.table = m.listChunk.snapshotView()
	s.chunks = m.chunks
}

// Name implements Method.
func (m *ChunkMethod) Name() string { return "Chunk" }

// ChunkRatio returns the configured ratio c.
func (m *ChunkMethod) ChunkRatio() float64 { return m.cfg.ChunkRatio }

// NumChunks reports how many chunks the build produced.
func (m *ChunkMethod) NumChunks() int {
	if m.chunks == nil {
		return 0
	}
	return m.chunks.NumChunks()
}

// Build implements Method.
func (m *ChunkMethod) Build(src DocSource, scores ScoreFunc) error {
	defer m.publish()
	m.src = src
	bc, err := accumulate(src, scores, m.dict)
	if err != nil {
		return err
	}
	if err := m.populateScoreTable(bc); err != nil {
		return err
	}
	m.chunks = buildChunker(bc.allScores(), m.cfg.ChunkRatio, m.cfg.MinChunkSize)
	// Published snapshots share the ref map by pointer, so accumulate into a
	// fresh map and swap it in wholesale.
	refs := make(map[string]blob.Ref, len(bc.termDocs))
	for _, term := range bc.terms() {
		builder := postings.NewChunkedEncoder(!m.cfg.Uncompressed, false)
		cids, byChunk := bc.chunked(term, m.chunks)
		for _, cid := range cids {
			if err := builder.AddChunk(cid, byChunk[cid]); err != nil {
				return fmt.Errorf("index: build Chunk list for %q: %w", term, err)
			}
		}
		data := builder.Bytes()
		ref, err := m.store.Put(data)
		if err != nil {
			return err
		}
		refs[term] = ref
		m.longBytes += uint64(len(data))
		m.longRawBytes += uint64(builder.Len())*rawBytesIDPosting + uint64(builder.Chunks())*rawBytesChunkHeader
	}
	m.longRefs = refs
	return nil
}

// ApplyUpdates implements Method: Algorithm 1 replays per update against
// the staged Score and ListChunk tables, and the short-list postings of the
// whole batch are written grouped by term.
func (m *ChunkMethod) ApplyUpdates(batch []Update) error {
	return m.runBatch(m, batch, m.score, m.short, m.listChunk)
}

// UpdateScore implements Method (Algorithm 1 with chunk IDs in place of
// scores).
func (m *ChunkMethod) UpdateScore(doc DocID, newScore float64) error {
	defer m.publish()
	m.counters.scoreUpdates.Add(1)
	oldScore, deleted, ok, err := m.score.Get(doc)
	if err != nil {
		return err
	}
	if !ok || deleted {
		return fmt.Errorf("%w: %d", ErrUnknownDocument, doc)
	}
	if err := m.score.Set(doc, newScore); err != nil {
		return err
	}

	entry, exists, err := m.listChunk.Get(doc)
	if err != nil {
		return err
	}
	var listCID int32
	var inShort bool
	if exists {
		listCID, inShort = int32(entry.Key), entry.InShortList
	} else {
		listCID = m.chunks.ChunkOf(oldScore)
		if err := m.listChunk.Put(doc, listEntry{Key: float64(listCID), InShortList: false}); err != nil {
			return err
		}
	}

	newCID := m.chunks.ChunkOf(newScore)
	if newCID <= thresholdChunk(listCID) {
		return nil
	}
	tokens, err := m.docTokens(doc)
	if err != nil {
		return fmt.Errorf("index: Chunk update for %d needs document content: %w", doc, err)
	}
	for _, tw := range docTermWeights(tokens) {
		if inShort {
			if err := m.short.Delete(tw.term, float64(listCID), doc); err != nil {
				return err
			}
		}
		if err := m.short.Put(tw.term, float64(newCID), doc, postings.OpAdd, tw.w); err != nil {
			return err
		}
		m.counters.shortListPostingsWritten.Add(1)
	}
	return m.listChunk.Put(doc, listEntry{Key: float64(newCID), InShortList: true})
}

// InsertDocument implements Method (Appendix A.2).
func (m *ChunkMethod) InsertDocument(doc DocID, tokens []string, score float64) error {
	defer m.publish()
	if m.chunks == nil {
		return fmt.Errorf("index: Chunk method must be built before inserting documents")
	}
	if err := m.score.Set(doc, score); err != nil {
		return err
	}
	cid := m.chunks.ChunkOf(score)
	weights := docTermWeights(tokens)
	distinct := make([]string, 0, len(weights))
	for _, tw := range weights {
		if err := m.short.Put(tw.term, float64(cid), doc, postings.OpAdd, tw.w); err != nil {
			return err
		}
		m.counters.shortListPostingsWritten.Add(1)
		distinct = append(distinct, tw.term)
	}
	m.dict.AddDocumentTerms(distinct)
	m.knownTokens[doc] = distinct
	m.numDocs.Add(1)
	return m.listChunk.Put(doc, listEntry{Key: float64(cid), InShortList: true})
}

// DeleteDocument implements Method (Appendix A.2).
func (m *ChunkMethod) DeleteDocument(doc DocID) error {
	defer m.publish()
	score, _, ok, err := m.score.Get(doc)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownDocument, doc)
	}
	if err := m.score.MarkDeleted(doc); err != nil {
		return err
	}
	for _, term := range m.docTermsForMaintenance(doc) {
		if err := m.short.DeleteAllForDoc(term, doc); err != nil {
			return err
		}
	}
	entry, exists, err := m.listChunk.Get(doc)
	if err != nil {
		return err
	}
	key := float64(m.chunks.ChunkOf(score))
	if exists {
		key = entry.Key
	}
	if err := m.listChunk.Put(doc, listEntry{Key: key, InShortList: false}); err != nil {
		return err
	}
	delete(m.knownTokens, doc)
	m.numDocs.Add(-1)
	return nil
}

// UpdateContent implements Method (Appendix A.1).
func (m *ChunkMethod) UpdateContent(doc DocID, oldTokens, newTokens []string) error {
	defer m.publish()
	listCID, err := m.listPosition(doc)
	if err != nil {
		return err
	}
	added, removed := diffTerms(oldTokens, newTokens)
	newWeights := text.TermFrequencies(newTokens)
	for _, term := range added {
		w := text.NormalizedTF(newWeights[term], len(newTokens))
		if err := m.short.Put(term, float64(listCID), doc, postings.OpAdd, w); err != nil {
			return err
		}
		m.counters.shortListPostingsWritten.Add(1)
	}
	for _, term := range removed {
		if err := m.short.Put(term, float64(listCID), doc, postings.OpRem, 0); err != nil {
			return err
		}
		m.counters.shortListPostingsWritten.Add(1)
	}
	m.dict.AddDocumentTerms(added)
	m.dict.RemoveDocumentTerms(removed)
	return nil
}

// listPosition returns the chunk ID under which the document's postings
// currently appear.
func (m *ChunkMethod) listPosition(doc DocID) (int32, error) {
	entry, exists, err := m.listChunk.Get(doc)
	if err != nil {
		return 0, err
	}
	if exists {
		return int32(entry.Key), nil
	}
	score, _, ok, err := m.score.Get(doc)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownDocument, doc)
	}
	return m.chunks.ChunkOf(score), nil
}

func (m *ChunkMethod) docTokens(doc DocID) ([]string, error) {
	if m.src != nil {
		if tokens, err := m.src.Tokens(doc); err == nil {
			return tokens, nil
		}
	}
	if cached, ok := m.knownTokens[doc]; ok {
		return cached, nil
	}
	return nil, fmt.Errorf("%w: %d has no available content", ErrUnknownDocument, doc)
}

func (m *ChunkMethod) docTermsForMaintenance(doc DocID) []string {
	if tokens, err := m.docTokens(doc); err == nil {
		return distinctTerms(tokens)
	}
	return nil
}

// TopK implements Method: the chunk adaptation of Algorithm 2.
func (m *ChunkMethod) TopK(q Query) (*QueryResult, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.WithTermScores {
		return nil, ErrTermScoresUnsupported
	}
	s, guard, err := m.acquire()
	if err != nil {
		return nil, err
	}
	defer guard.Leave()
	ctx := newQueryCtx()
	defer ctx.release()
	for _, term := range q.Terms {
		long, err := m.longIterator(s, term)
		if err != nil {
			return nil, err
		}
		short, err := s.lists.Iterator(term)
		if err != nil {
			return nil, err
		}
		ctx.streams = append(ctx.streams, combinedStream(short, long))
	}
	return m.runRanked(rankedQuery{
		streams:     ctx.streams,
		k:           q.K,
		conjunctive: !q.Disjunctive,
		maxPossible: maxPossibleChunkScore(s),
		resolve:     probedChunkResolver(s),
	})
}

// probedChunkResolver returns a per-query resolveCandidate whose ListChunk
// and Score lookups run through leaf-locality probes pinned to the
// snapshot: within a chunk the candidates arrive in ascending document
// order, so both tables are walked left to right instead of descended per
// candidate.  Shared by the Chunk and Chunk-TermScore methods.
func probedChunkResolver(s *snap) func(g postings.Group) (float64, bool, error) {
	lp := s.table.newProbe()
	sp := s.score.newProbe()
	return func(g postings.Group) (float64, bool, error) {
		entry, exists, err := lp.Get(g.Doc)
		if err != nil {
			return 0, false, err
		}
		if exists && entry.InShortList && g.SortKey != entry.Key {
			// Stale long-list copy; the short copy is processed instead.
			return 0, false, nil
		}
		score, deleted, ok, err := sp.Get(g.Doc)
		if err != nil {
			return 0, false, err
		}
		if !ok || deleted {
			return 0, false, nil
		}
		return score, true, nil
	}
}

// maxPossibleChunkScore bounds the current score of any document whose
// postings have not been reached when the scan is at chunk cid: such a
// document's list chunk is at most cid, and since a score may drift one
// chunk above its list chunk without triggering a short-list rewrite, its
// current score is below the upper bound of chunk cid+1.
func maxPossibleChunkScore(s *snap) func(sortKey float64) float64 {
	return func(sortKey float64) float64 {
		return s.chunks.UpperBound(thresholdChunk(int32(sortKey)))
	}
}

func (m *ChunkMethod) longIterator(s *snap, term string) (postings.BatchIterator, error) {
	ref, ok := s.longRefs[term]
	if !ok {
		return postings.NewSliceIterator(nil), nil
	}
	return postings.NewStreamChunkedList(m.store.NewReader(ref))
}

// Stats implements Method.
func (m *ChunkMethod) Stats() Stats {
	sn, guard, err := m.acquire()
	if err != nil {
		return Stats{Method: m.Name()}
	}
	defer guard.Leave()
	s := Stats{
		Method:           m.Name(),
		LongListBytes:    sn.longBytes,
		LongListRawBytes: sn.longRawBytes,
		ShortListEntries: sn.lists.Len(),
		TablePatches:     sn.score.Patches() + sn.table.Patches() + sn.lists.Patches(),
	}
	m.counters.fill(&s)
	m.fillPoolStats(&s)
	m.fillEpochStats(&s)
	return s
}
