// Package index implements the paper's family of inverted-list index
// structures and their query and update algorithms:
//
//   - ID              (§4.2.1) — ID-ordered lists, score lookups per result.
//   - Score           (§4.2.2) — score-ordered clustered B+-tree lists,
//     rewritten on every score update.
//   - Score-Threshold (§4.3.1) — stale score-ordered long lists plus short
//     lists for documents whose score moved past a threshold; Algorithm 1
//     for updates, Algorithm 2 for queries.
//   - Chunk           (§4.3.2) — long lists ordered by descending chunk ID,
//     ID-ordered within a chunk; short lists updated when a document climbs
//     two or more chunks.
//   - ID-TermScore    (§5.2)  — the ID baseline extended with per-posting
//     term weights.
//   - Chunk-TermScore (§4.3.3) — the Chunk method extended with per-posting
//     term weights and per-term fancy lists; Algorithm 3 for queries.
//
// All methods implement the Method interface so the engine, the benchmark
// harness and the correctness tests treat them uniformly.  Long lists are
// written in the compressed posting-block format by default
// (Config.Uncompressed writes the legacy layouts; reads auto-detect), and
// Stats reports both the stored and the fixed-width raw footprint so the
// compression ratio is observable per method.  Every method
// guarantees that TopK returns the correct top-k result set with respect to
// the *latest* document scores, no matter how stale its long lists are
// (Theorems 1 and 2 of the paper).
//
// See ARCHITECTURE.md for the layer map — where this package sits in the
// stack — and for the repo-wide concurrency contract.
package index
