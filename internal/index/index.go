package index

import (
	"errors"
	"fmt"
	"sync/atomic"

	"svrdb/internal/postings"
	"svrdb/internal/storage/blob"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/epoch"
	"svrdb/internal/text"
	"svrdb/internal/topk"
)

// DocID aliases the postings document identifier for convenience.
type DocID = postings.DocID

// DocSource supplies document content to index builds and to score-update
// processing (Algorithm 1 touches every term of the updated document).
type DocSource interface {
	// NumDocs reports the number of documents.
	NumDocs() int
	// ForEach visits every document with its token stream (tokens may repeat;
	// the index derives term frequencies itself).
	ForEach(func(doc DocID, tokens []string) error) error
	// Tokens returns the token stream of one document.
	Tokens(doc DocID) ([]string, error)
}

// ScoreFunc returns the initial SVR score of a document at build time.
type ScoreFunc func(doc DocID) float64

// Query describes one keyword-search request.
type Query struct {
	// Terms are the query keywords (analyzed terms).
	Terms []string
	// K is the number of results wanted.
	K int
	// Disjunctive selects OR semantics (documents containing at least one
	// term); the default is conjunctive (all terms).
	Disjunctive bool
	// WithTermScores requests the combined SVR + term-score ranking of
	// §4.3.3.  Only the TermScore methods support it; the others return
	// ErrTermScoresUnsupported.
	WithTermScores bool
	// Global, when set, overrides the collection statistics used for IDF
	// with cluster-wide values so a shard ranks with the same idf as a
	// single engine holding the whole corpus.  DF is aligned with Terms.
	Global *GlobalStats
}

// GlobalStats carries cluster-wide collection statistics for sharded
// ranking: the total document count and the per-query-term document
// frequencies summed over every shard.  With these overriding a shard's
// local statistics, per-shard TFIDF contributions are bit-identical to the
// single-engine computation, which makes the scatter-gather top-k merge
// byte-identical as well.
type GlobalStats struct {
	NumDocs int64
	// DF[i] is the global document frequency of Query.Terms[i].
	DF []int64
}

// Validate checks the query shape.
func (q *Query) Validate() error {
	if len(q.Terms) == 0 {
		return errors.New("index: query needs at least one term")
	}
	if q.K < 1 {
		return fmt.Errorf("index: query k = %d must be positive", q.K)
	}
	if q.Global != nil && len(q.Global.DF) != len(q.Terms) {
		return fmt.Errorf("index: global stats carry %d df entries for %d terms", len(q.Global.DF), len(q.Terms))
	}
	return nil
}

// Result is one ranked document.
type Result = topk.Result

// QueryResult carries the ranked documents plus the per-query work counters
// the experiments report.
type QueryResult struct {
	Results []Result
	// PostingsScanned counts long+short list postings consumed.
	PostingsScanned int
	// ScoreLookups counts random probes of the Score table.
	ScoreLookups int
	// Stopped reports whether the query terminated before exhausting the
	// lists (early termination).
	Stopped bool
}

// ErrTermScoresUnsupported is returned when a query requests combined
// SVR+term ranking from a method that does not store term scores.
var ErrTermScoresUnsupported = errors.New("index: method does not store term scores")

// ErrUnknownDocument is returned when an update refers to a document the
// index has never seen.
var ErrUnknownDocument = errors.New("index: unknown document")

// ErrClosed is returned by queries issued after the method was drained.
var ErrClosed = errors.New("index: method is closed")

// UpdateKind discriminates the operations an Update batch can carry.
type UpdateKind uint8

const (
	// ScoreOp is a document score change (Algorithm 1).
	ScoreOp UpdateKind = iota
	// InsertOp adds a new document (Appendix A.2).
	InsertOp
	// DeleteOp removes a document (Appendix A.2).
	DeleteOp
	// ContentOp replaces a document's token stream (Appendix A.1).
	ContentOp
)

// String implements fmt.Stringer.
func (k UpdateKind) String() string {
	switch k {
	case ScoreOp:
		return "score"
	case InsertOp:
		return "insert"
	case DeleteOp:
		return "delete"
	case ContentOp:
		return "content"
	default:
		return fmt.Sprintf("UpdateKind(%d)", uint8(k))
	}
}

// Update is one operation of a write batch, covering all four incremental
// maintenance paths.  Which fields are read depends on Op:
//
//   - ScoreOp:   Doc, Score (the new score)
//   - InsertOp:  Doc, Tokens, Score (the initial score)
//   - DeleteOp:  Doc
//   - ContentOp: Doc, OldTokens, NewTokens
type Update struct {
	Op    UpdateKind
	Doc   DocID
	Score float64
	// Tokens is the token stream of an inserted document.
	Tokens []string
	// OldTokens and NewTokens are the previous and new token streams of a
	// content update.
	OldTokens, NewTokens []string
}

// Method is the common interface of all six index structures.
type Method interface {
	// Name returns the method's name as used in the paper's tables.
	Name() string
	// Build bulk-loads the long inverted lists and the Score table.
	Build(src DocSource, scores ScoreFunc) error
	// UpdateScore applies a document score update (Algorithm 1).
	UpdateScore(doc DocID, newScore float64) error
	// InsertDocument adds a new document incrementally (Appendix A.2).
	InsertDocument(doc DocID, tokens []string, score float64) error
	// DeleteDocument removes a document (Appendix A.2).
	DeleteDocument(doc DocID) error
	// UpdateContent applies a content update given the previous and new
	// token streams (Appendix A.1).
	UpdateContent(doc DocID, oldTokens, newTokens []string) error
	// ApplyUpdates applies a batch of updates with the semantics of making
	// the equivalent calls one at a time in batch order, but with the
	// underlying table and short-list writes grouped so that every touched
	// B+-tree leaf is rewritten once per batch instead of once per posting.
	// A failing update does not abort the batch: the remaining updates
	// still apply and the errors are joined, matching the engine's eager
	// maintenance behaviour.
	ApplyUpdates(batch []Update) error
	// MergeShortLists performs the periodic offline merge: the long lists are
	// rebuilt from the current collection state and the short lists emptied
	// (§5.1, Appendix A.3).  It is a no-op for the Score method.
	MergeShortLists() error
	// TopK evaluates a keyword query against the latest scores.
	TopK(q Query) (*QueryResult, error)
	// TermStats reports the collection statistics TFIDF depends on — the
	// document count and the document frequency of each given term — from
	// the latest published snapshot.  A cluster sums these across shards
	// into the GlobalStats it passes back through Query.Global.
	TermStats(terms []string) (numDocs int64, df []int64, err error)
	// Stats returns cumulative counters and structure sizes.
	Stats() Stats
	// State snapshots the method's navigational state for a checkpoint; the
	// page-resident structures it anchors must already be flushed.
	State() MethodState
	// SetSource rewires the document source after a Restore (Build sets it
	// itself).
	SetSource(src DocSource)
	// Drain fences out new readers, waits for in-flight queries to leave
	// their epochs and recycles every retired page.  The method must not be
	// used after Drain returns; queries racing it get ErrClosed.
	Drain() error
	// ReleasePages retires every page the method's structures occupy so an
	// online drop returns them to the pagefile free list.  The caller must
	// have fenced out writers, and must Drain afterwards to recycle the
	// retired pages; the method is unusable once released.
	ReleasePages() error
}

// Stats describes an index's size and the work it has performed.
type Stats struct {
	Method string
	// LongListBytes is the total size of the immutable long inverted lists
	// (Table 1 of the paper).  For the Score method it is the size of the
	// clustered score-ordered B+-tree contents.
	LongListBytes uint64
	// LongListRawBytes is what the same long-list postings would occupy in
	// fixed-width form (8 bytes per doc id, 8 per score, 4 per term weight
	// or chunk header) — the denominator of the compression ratio.  Zero
	// for the Score method, whose postings live in B+-tree leaves rather
	// than blobs.
	LongListRawBytes uint64
	// PagesRead and PageHits mirror the buffer pool's cumulative miss and
	// hit counters for the pool hosting this index.  On a pool shared by
	// several indexes they aggregate across all of them; the bench rig
	// gives each method its own pool so per-query page deltas are exact.
	PagesRead uint64
	PageHits  uint64
	// ShortListEntries is the number of postings currently in short lists.
	ShortListEntries int
	// ScoreUpdates counts UpdateScore calls.
	ScoreUpdates uint64
	// ShortListPostingsWritten counts postings inserted into or rewritten in
	// the short lists (the expensive part of an update).
	ShortListPostingsWritten uint64
	// LongListPostingsWritten counts postings rewritten in place in the long
	// lists (only the Score method does this).
	LongListPostingsWritten uint64
	// Queries counts TopK calls; PostingsScanned the postings they consumed.
	Queries         uint64
	PostingsScanned uint64
	// TablePatches counts B+-tree writes the method's updatable structures
	// (Score table, ListScore/ListChunk tables, short and clustered lists)
	// absorbed via the in-place leaf patch fast path instead of a full leaf
	// rewrite.  On a pure score-update workload it should track ScoreUpdates
	// closely; a collapse to zero means the fast path regressed.
	TablePatches uint64
	// Epoch is the current snapshot epoch (advanced on every publication).
	Epoch uint64
	// ActiveReaders is the number of queries currently pinned to an epoch.
	ActiveReaders int
	// RetainedPages is the number of superseded pages kept alive for
	// snapshot readers, awaiting epoch drain.
	RetainedPages int
}

// Config carries the tunable parameters shared by the methods.
type Config struct {
	// Pool hosts every B+-tree and blob the index creates.
	Pool *buffer.Pool
	// ThresholdRatio is the Score-Threshold knob t in
	// thresholdValueOf(score) = t * score; must be >= 1.
	ThresholdRatio float64
	// ChunkRatio is the Chunk knob c: adjacent chunk lower bounds differ by a
	// factor of c; must be > 1.
	ChunkRatio float64
	// MinChunkSize is the minimum number of documents per chunk.
	MinChunkSize int
	// FancyListSize is the number of highest-term-score postings kept in each
	// fancy list of the Chunk-TermScore method.
	FancyListSize int
	// Uncompressed stores long-list blobs in the legacy fixed-width
	// encodings instead of compressed posting blocks.  The default (false)
	// compresses; the flag exists for A/B comparison in benchmarks and
	// equivalence tests.  Reads auto-detect the encoding, so the flag only
	// affects builds.
	Uncompressed bool
}

// Defaults fills unset fields with the values used throughout the paper's
// evaluation (threshold ratio 11.24, chunk ratio 6.12, minimum chunk size
// 100, fancy lists of 32 postings).
func (c Config) Defaults() Config {
	if c.ThresholdRatio < 1 {
		c.ThresholdRatio = 11.24
	}
	if c.ChunkRatio <= 1 {
		c.ChunkRatio = 6.12
	}
	if c.MinChunkSize <= 0 {
		c.MinChunkSize = 100
	}
	if c.FancyListSize <= 0 {
		c.FancyListSize = 32
	}
	return c
}

// counters groups the atomic statistics shared by all method
// implementations.
type counters struct {
	scoreUpdates             atomic.Uint64
	shortListPostingsWritten atomic.Uint64
	longListPostingsWritten  atomic.Uint64
	queries                  atomic.Uint64
	postingsScanned          atomic.Uint64
}

func (c *counters) fill(s *Stats) {
	s.ScoreUpdates = c.scoreUpdates.Load()
	s.ShortListPostingsWritten = c.shortListPostingsWritten.Load()
	s.LongListPostingsWritten = c.longListPostingsWritten.Load()
	s.Queries = c.queries.Load()
	s.PostingsScanned = c.postingsScanned.Load()
}

// fillPoolStats copies the buffer pool's page counters into s.
func (b *base) fillPoolStats(s *Stats) {
	ps := b.cfg.Pool.Stats()
	s.PagesRead = ps.Misses
	s.PageHits = ps.Hits
}

// Fixed-width per-posting footprints of the long-list layouts, used for
// the raw side of the compression ratio: doc ids and scores at 8 bytes,
// term weights at 4, plus a 4-byte header per chunk in the chunked
// layouts.
const (
	rawBytesIDPosting     = 8
	rawBytesIDTermPosting = 12
	rawBytesScorePosting  = 16
	rawBytesChunkHeader   = 4
)

// base bundles the plumbing common to every method: the blob store for long
// lists, the score table, the dictionary and the document source.
type base struct {
	cfg   Config
	store *blob.Store
	dict  *text.Dictionary
	score *scoreTable
	src   DocSource

	// longRefs maps terms to their long-list blobs.  Snapshots share this
	// map by pointer, so writers never mutate it in place: build and merge
	// paths accumulate refs in a local map and swap it in wholesale.
	longRefs  map[string]blob.Ref
	longBytes uint64
	// longRawBytes accumulates the fixed-width footprint of every posting
	// written to long-list blobs (fancy lists included), so Stats can
	// report the compression ratio without re-reading the lists.
	longRawBytes uint64
	// numDocs is atomic so concurrent queries can read the collection size
	// (for IDF) while a serialized writer inserts or deletes documents.
	numDocs  atomic.Int64
	counters counters

	// epochs tracks reader epochs and recycles retired pages; published is
	// the snapshot queries evaluate against.
	epochs    *epoch.Manager
	published atomic.Pointer[snap]
	// suppress disables per-update publication inside ApplyUpdates, which
	// publishes once per batch instead.  Only the serialized writer touches
	// it.
	suppress bool
	// fillExtra is the method-specific half of publication, set once at
	// construction (captures the method's own lists and metadata).
	fillExtra func(*snap)

	// pubDict/pubGen/pubDF cache the last published document-frequency
	// vector so score-only publications skip the O(vocabulary) copy.
	pubDict *text.Dictionary
	pubGen  uint64
	pubDF   []int64
}

func newBase(cfg Config) (*base, error) {
	if cfg.Pool == nil {
		return nil, errors.New("index: Config.Pool is required")
	}
	cfg = cfg.Defaults()
	st, err := newScoreTable(cfg.Pool)
	if err != nil {
		return nil, err
	}
	b := &base{
		cfg:      cfg,
		store:    blob.NewStore(cfg.Pool),
		dict:     text.NewDictionary(),
		score:    st,
		longRefs: map[string]blob.Ref{},
	}
	b.epochs = epoch.New(cfg.Pool.FreePage)
	st.enableCOW(b.retirePage)
	return b, nil
}

// docTermStats tokenizes a document into distinct terms with normalized term
// frequencies.
type termWeight struct {
	term string
	w    float32
}

func docTermWeights(tokens []string) []termWeight {
	tf := text.TermFrequencies(tokens)
	out := make([]termWeight, 0, len(tf))
	for term, n := range tf {
		out = append(out, termWeight{term: term, w: text.NormalizedTF(n, len(tokens))})
	}
	return out
}

func distinctTerms(tokens []string) []string { return text.DistinctTerms(tokens) }
