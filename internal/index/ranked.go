package index

import (
	"math"
	"sync"

	"svrdb/internal/postings"
	"svrdb/internal/topk"
)

// queryCtx is the per-query scratch a TopK call assembles its pipeline in:
// the per-term stream slice plus the IDF/epsilon arrays of the TermScore
// algorithms.  Every query gets its own context from a sync.Pool — two
// concurrent Searches never share scratch, and the steady-state query path
// reuses the slices instead of allocating them anew per query.  The context
// must be released only after the query is fully evaluated (the group merger
// reads the streams it references).
type queryCtx struct {
	streams  []postings.BatchIterator
	idfs     []float64
	epsilons []float64
}

var queryCtxPool = sync.Pool{New: func() any { return &queryCtx{} }}

// newQueryCtx returns an empty context with capacity hints for n terms.
func newQueryCtx() *queryCtx {
	c := queryCtxPool.Get().(*queryCtx)
	c.streams = c.streams[:0]
	c.idfs = c.idfs[:0]
	c.epsilons = c.epsilons[:0]
	return c
}

// release returns the context to the pool.  The caller must not touch the
// context (or slices taken from it) afterwards.
func (c *queryCtx) release() {
	for i := range c.streams {
		c.streams[i] = nil // drop iterator references so the pool retains no streams
	}
	queryCtxPool.Put(c)
}

// rankedQuery is the shared skeleton of Algorithm 2 and its relatives: merge
// the per-term streams (each the union of a short and a long list, already
// collapsed for ADD/REM content updates) in descending list-order, detect
// candidates, resolve their current scores, and stop as soon as no unseen
// document can beat the current top-k.
//
// The pieces that differ between methods are injected:
//
//   - maxPossible(sortKey) bounds the current score of every document whose
//     postings have not been reached yet, given the list position about to be
//     processed.  Score-Threshold uses thresholdValueOf(listScore) = t·s;
//     Chunk uses the upper score bound of chunk (cid+1); the exact Score
//     method uses the list score itself; the ID methods use +Inf, which
//     disables early termination and forces a full scan, exactly as §4.2.1
//     describes.
//
//   - resolve(group) produces the candidate's current score and decides
//     whether this particular appearance of the document should be counted
//     (the "is it from the short list / is it superseded" logic of
//     Algorithm 2 lines 12-21).
type rankedQuery struct {
	streams     []postings.BatchIterator
	k           int
	conjunctive bool
	maxPossible func(sortKey float64) float64
	resolve     func(g postings.Group) (score float64, include bool, err error)
}

// run executes the query and returns the ranked results with work counters.
// The per-term streams move postings in batches (see postings.BatchIterator);
// the merger's scratch buffers are pooled and released when the query ends,
// so the steady-state query path performs no per-posting allocation.
func (b *base) runRanked(q rankedQuery) (*QueryResult, error) {
	b.counters.queries.Add(1)
	heap := topk.New(q.k)
	merger := postings.NewGroupMerger(q.streams...)
	defer merger.Close()
	res := &QueryResult{}
	for {
		g, ok, err := merger.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		res.PostingsScanned += g.Count

		// Early-termination check (Algorithm 2 lines 9-11): every unseen
		// document, including this one, has a current score bounded by
		// maxPossible(g.SortKey); once k results at or above that bound are
		// held, the answer cannot change.
		if min, full := heap.MinScore(); full {
			if q.maxPossible(g.SortKey) <= min {
				res.Stopped = true
				break
			}
		}

		if q.conjunctive && !g.ContainsAll() {
			continue
		}
		if !q.conjunctive && g.Count == 0 {
			continue
		}
		score, include, err := q.resolve(g)
		if err != nil {
			return nil, err
		}
		if include {
			heap.Add(int64(g.Doc), score)
		}
	}
	res.Results = heap.Results()
	b.counters.postingsScanned.Add(uint64(res.PostingsScanned))
	return res, nil
}

// neverStop is the maxPossible function of the ID family: no bound exists on
// unseen documents, so the whole list must be scanned.
func neverStop(float64) float64 { return math.Inf(1) }

// combinedStream builds a term's query stream from its short and long
// lists.  With short-list postings present this is the
// "SL(ti) ∪ LL(ti)" union with ADD/REM collapsing; with an empty short
// list — the common case for most terms, and for every term right after a
// build or merge — both stages are identities, so the long list is consumed
// directly and the query skips two pipeline stages and their batch buffers.
func combinedStream(short *postings.SliceIterator, long postings.BatchIterator) postings.BatchIterator {
	if short.Len() == 0 {
		return long
	}
	return postings.NewCollapseOps(postings.NewUnion(short, long))
}
