package index

import (
	"fmt"

	"svrdb/internal/postings"
	"svrdb/internal/storage/btree"
	"svrdb/internal/text"
)

// ScoreMethod implements the Score method of §4.2.2: every term's inverted
// list is kept in exact descending-score order in a clustered B+-tree, which
// makes top-k queries fast (scan a prefix, stop after k results) but makes
// score updates extremely expensive — every distinct term of the updated
// document needs its posting moved, one random B+-tree probe per term.
//
// The paper uses this method as the query-optimal / update-pathological end
// of the spectrum; Table 7 shows its per-update cost is orders of magnitude
// above every other method, which is why the evaluation drops it early.
type ScoreMethod struct {
	*base
	lists *keyedList
}

// NewScore creates a Score-method index.
func NewScore(cfg Config) (*ScoreMethod, error) {
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	lists, err := newKeyedList(b.cfg.Pool)
	if err != nil {
		return nil, err
	}
	m := &ScoreMethod{base: b, lists: lists}
	m.initSnapshots()
	return m, nil
}

// initSnapshots wires the clustered lists into the epoch machinery and
// publishes the initial snapshot; also used after Restore.
func (m *ScoreMethod) initSnapshots() {
	m.lists.enableCOW(m.retirePage)
	m.fillExtra = func(s *snap) { s.lists = m.lists.snapshotView() }
	m.publish()
}

// Name implements Method.
func (m *ScoreMethod) Name() string { return "Score" }

// Build implements Method.  On a fresh index the clustered lists are
// bulk-loaded leaf by leaf: (term, score desc, doc) is exactly the tree's
// key order, so the per-term score-sorted runs concatenate into one sorted
// run and no per-posting descent is paid.
func (m *ScoreMethod) Build(src DocSource, scores ScoreFunc) error {
	defer m.publish()
	m.src = src
	bc, err := accumulate(src, scores, m.dict)
	if err != nil {
		return err
	}
	if err := m.populateScoreTable(bc); err != nil {
		return err
	}
	if m.lists.tree.Len() == 0 {
		var items []btree.Item
		for _, term := range bc.terms() {
			for _, dw := range bc.sortedByScoreDesc(term) {
				items = append(items, btree.Item{
					Key:   keyedListKey(term, bc.docScores[dw.doc], dw.doc),
					Value: encodeKeyedListValue(postings.OpAdd, dw.w),
				})
			}
		}
		if err := m.lists.bulkLoad(m.cfg.Pool, items); err != nil {
			return fmt.Errorf("index: bulk-load Score lists: %w", err)
		}
		return nil
	}
	for _, term := range bc.terms() {
		for _, dw := range bc.termDocs[term] {
			if err := m.lists.Put(term, bc.docScores[dw.doc], dw.doc, postings.OpAdd, dw.w); err != nil {
				return fmt.Errorf("index: build Score list for %q: %w", term, err)
			}
		}
	}
	return nil
}

// ApplyUpdates implements Method.  Even though every Score-method update
// rewrites long-list postings, staging still groups a batch's per-term
// deletes and reinserts into per-leaf tree writes.
func (m *ScoreMethod) ApplyUpdates(batch []Update) error {
	return m.runBatch(m, batch, m.score, m.lists)
}

// UpdateScore implements Method: the posting of every distinct term of the
// document must be deleted at the old score position and reinserted at the
// new one, which is exactly the cost the paper's Figure 7 measures.
func (m *ScoreMethod) UpdateScore(doc DocID, newScore float64) error {
	defer m.publish()
	m.counters.scoreUpdates.Add(1)
	oldScore, deleted, ok, err := m.score.Get(doc)
	if err != nil {
		return err
	}
	if !ok || deleted {
		return fmt.Errorf("%w: %d", ErrUnknownDocument, doc)
	}
	if err := m.score.Set(doc, newScore); err != nil {
		return err
	}
	if oldScore == newScore {
		return nil
	}
	tokens, err := m.src.Tokens(doc)
	if err != nil {
		return fmt.Errorf("index: Score method needs document %d content to move its postings: %w", doc, err)
	}
	for _, tw := range docTermWeights(tokens) {
		if err := m.lists.Delete(tw.term, oldScore, doc); err != nil {
			return err
		}
		if err := m.lists.Put(tw.term, newScore, doc, postings.OpAdd, tw.w); err != nil {
			return err
		}
		m.counters.longListPostingsWritten.Add(2)
	}
	return nil
}

// InsertDocument implements Method.
func (m *ScoreMethod) InsertDocument(doc DocID, tokens []string, score float64) error {
	defer m.publish()
	if err := m.score.Set(doc, score); err != nil {
		return err
	}
	weights := docTermWeights(tokens)
	distinct := make([]string, 0, len(weights))
	for _, tw := range weights {
		if err := m.lists.Put(tw.term, score, doc, postings.OpAdd, tw.w); err != nil {
			return err
		}
		m.counters.longListPostingsWritten.Add(1)
		distinct = append(distinct, tw.term)
	}
	m.dict.AddDocumentTerms(distinct)
	m.numDocs.Add(1)
	return nil
}

// DeleteDocument implements Method.
func (m *ScoreMethod) DeleteDocument(doc DocID) error {
	defer m.publish()
	score, _, ok, err := m.score.Get(doc)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownDocument, doc)
	}
	if m.src != nil {
		if tokens, err := m.src.Tokens(doc); err == nil {
			for _, term := range distinctTerms(tokens) {
				if err := m.lists.Delete(term, score, doc); err != nil {
					return err
				}
			}
			m.dict.RemoveDocumentTerms(distinctTerms(tokens))
		}
	}
	if err := m.score.MarkDeleted(doc); err != nil {
		return err
	}
	m.numDocs.Add(-1)
	return nil
}

// UpdateContent implements Method.
func (m *ScoreMethod) UpdateContent(doc DocID, oldTokens, newTokens []string) error {
	defer m.publish()
	score, _, ok, err := m.score.Get(doc)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownDocument, doc)
	}
	added, removed := diffTerms(oldTokens, newTokens)
	newWeights := text.TermFrequencies(newTokens)
	for _, term := range added {
		w := text.NormalizedTF(newWeights[term], len(newTokens))
		if err := m.lists.Put(term, score, doc, postings.OpAdd, w); err != nil {
			return err
		}
		m.counters.longListPostingsWritten.Add(1)
	}
	for _, term := range removed {
		if err := m.lists.Delete(term, score, doc); err != nil {
			return err
		}
		m.counters.longListPostingsWritten.Add(1)
	}
	m.dict.AddDocumentTerms(added)
	m.dict.RemoveDocumentTerms(removed)
	return nil
}

// TopK implements Method.  Because the lists hold exact current scores, the
// query can stop as soon as k results are found whose scores are at least
// the score of the next posting.
func (m *ScoreMethod) TopK(q Query) (*QueryResult, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.WithTermScores {
		return nil, ErrTermScoresUnsupported
	}
	s, guard, err := m.acquire()
	if err != nil {
		return nil, err
	}
	defer guard.Leave()
	ctx := newQueryCtx()
	defer ctx.release()
	for _, term := range q.Terms {
		ctx.streams = append(ctx.streams, s.lists.Cursor(term, false))
	}
	return m.runRanked(rankedQuery{
		streams:     ctx.streams,
		k:           q.K,
		conjunctive: !q.Disjunctive,
		maxPossible: func(sortKey float64) float64 { return sortKey },
		resolve: func(g postings.Group) (float64, bool, error) {
			return g.SortKey, true, nil
		},
	})
}

// Stats implements Method.  LongListBytes is the serialized size of the
// clustered score-ordered lists; it corresponds to the 2,768 MB entry of
// Table 1 (the Score method pays B+-tree overhead because its lists must be
// updatable in place).
func (m *ScoreMethod) Stats() Stats {
	sn, guard, err := m.acquire()
	if err != nil {
		return Stats{Method: m.Name()}
	}
	defer guard.Leave()
	size, err := sn.lists.SizeBytes()
	if err != nil {
		size = 0
	}
	s := Stats{
		Method:        m.Name(),
		LongListBytes: size,
		// LongListRawBytes stays zero: the Score method keeps its postings in
		// B+-tree leaves, not compressed long-list blobs.
		TablePatches: sn.score.Patches() + sn.lists.Patches(),
	}
	m.counters.fill(&s)
	m.fillPoolStats(&s)
	m.fillEpochStats(&s)
	return s
}
