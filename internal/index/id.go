package index

import (
	"fmt"

	"svrdb/internal/postings"
	"svrdb/internal/text"
)

// IDMethod implements the ID method of §4.2.1 and, when built with term
// scores, the ID-TermScore baseline of §5.2.
//
// The long inverted list of each term holds the IDs of the documents
// containing it in ascending ID order (d-gap compressed), so a score update
// never touches the lists: only the Score table changes.  The price is paid
// at query time: because the lists carry no score information, every list
// must be scanned to the end and every candidate's score looked up, no
// matter how small k is.
//
// Incrementally inserted documents and content updates go to an auxiliary
// ID-ordered short list (Appendix A applies the same mechanism to every
// method); score updates never touch it.
type IDMethod struct {
	*base
	withTermScores bool
	aux            *keyedList
	// knownTokens caches the distinct terms of documents inserted after the
	// bulk build so that deletions can purge their auxiliary postings even if
	// the document source no longer has the row.
	knownTokens map[DocID][]string
}

// NewID creates an ID-method index.
func NewID(cfg Config) (*IDMethod, error) { return newIDMethod(cfg, false) }

// NewIDTermScore creates an ID-TermScore index (the ID method with a
// normalized term weight stored in every posting).
func NewIDTermScore(cfg Config) (*IDMethod, error) { return newIDMethod(cfg, true) }

func newIDMethod(cfg Config, withTermScores bool) (*IDMethod, error) {
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	aux, err := newKeyedList(b.cfg.Pool)
	if err != nil {
		return nil, err
	}
	return &IDMethod{base: b, withTermScores: withTermScores, aux: aux, knownTokens: map[DocID][]string{}}, nil
}

// Name implements Method.
func (m *IDMethod) Name() string {
	if m.withTermScores {
		return "ID-TermScore"
	}
	return "ID"
}

// Build implements Method.
func (m *IDMethod) Build(src DocSource, scores ScoreFunc) error {
	m.src = src
	bc, err := accumulate(src, scores, m.dict)
	if err != nil {
		return err
	}
	if err := m.populateScoreTable(bc); err != nil {
		return err
	}
	for _, term := range bc.terms() {
		var data []byte
		if m.withTermScores {
			builder := postings.NewIDTermEncoder(!m.cfg.Uncompressed)
			for _, dw := range bc.termDocs[term] {
				if err := builder.Add(dw.doc, dw.w); err != nil {
					return fmt.Errorf("index: build %s list for %q: %w", m.Name(), term, err)
				}
			}
			data = builder.Bytes()
			m.longRawBytes += uint64(builder.Len()) * rawBytesIDTermPosting
		} else {
			builder := postings.NewIDEncoder(!m.cfg.Uncompressed)
			for _, dw := range bc.termDocs[term] {
				if err := builder.Add(dw.doc); err != nil {
					return fmt.Errorf("index: build %s list for %q: %w", m.Name(), term, err)
				}
			}
			data = builder.Bytes()
			m.longRawBytes += uint64(builder.Len()) * rawBytesIDPosting
		}
		ref, err := m.store.Put(data)
		if err != nil {
			return err
		}
		m.longRefs[term] = ref
		m.longBytes += uint64(len(data))
	}
	return nil
}

// ApplyUpdates implements Method: the batch replays through the ordinary
// maintenance paths with the Score table and the auxiliary list staged, so
// its tree writes group by leaf.
func (m *IDMethod) ApplyUpdates(batch []Update) error {
	return m.runBatch(m, batch, m.score, m.aux)
}

// UpdateScore implements Method: the only work is one Score-table write.
func (m *IDMethod) UpdateScore(doc DocID, newScore float64) error {
	m.counters.scoreUpdates.Add(1)
	_, _, ok, err := m.score.Get(doc)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownDocument, doc)
	}
	return m.score.Set(doc, newScore)
}

// InsertDocument implements Method.
func (m *IDMethod) InsertDocument(doc DocID, tokens []string, score float64) error {
	if err := m.score.Set(doc, score); err != nil {
		return err
	}
	weights := docTermWeights(tokens)
	distinct := make([]string, 0, len(weights))
	for _, tw := range weights {
		if err := m.aux.Put(tw.term, 0, doc, postings.OpAdd, tw.w); err != nil {
			return err
		}
		m.counters.shortListPostingsWritten.Add(1)
		distinct = append(distinct, tw.term)
	}
	m.dict.AddDocumentTerms(distinct)
	m.knownTokens[doc] = distinct
	m.numDocs.Add(1)
	return nil
}

// DeleteDocument implements Method.
func (m *IDMethod) DeleteDocument(doc DocID) error {
	if err := m.score.MarkDeleted(doc); err != nil {
		return err
	}
	for _, term := range m.docTermsForMaintenance(doc) {
		if err := m.aux.DeleteAllForDoc(term, doc); err != nil {
			return err
		}
	}
	delete(m.knownTokens, doc)
	m.numDocs.Add(-1)
	return nil
}

// UpdateContent implements Method.
func (m *IDMethod) UpdateContent(doc DocID, oldTokens, newTokens []string) error {
	added, removed := diffTerms(oldTokens, newTokens)
	newWeights := text.TermFrequencies(newTokens)
	for _, term := range added {
		w := text.NormalizedTF(newWeights[term], len(newTokens))
		if err := m.aux.Put(term, 0, doc, postings.OpAdd, w); err != nil {
			return err
		}
		m.counters.shortListPostingsWritten.Add(1)
	}
	for _, term := range removed {
		if err := m.aux.Put(term, 0, doc, postings.OpRem, 0); err != nil {
			return err
		}
		m.counters.shortListPostingsWritten.Add(1)
	}
	m.dict.AddDocumentTerms(added)
	m.dict.RemoveDocumentTerms(removed)
	return nil
}

// docTermsForMaintenance returns the distinct terms of a document for purge
// operations, preferring the document source and falling back to the cache
// of incrementally inserted documents.
func (m *IDMethod) docTermsForMaintenance(doc DocID) []string {
	if m.src != nil {
		if tokens, err := m.src.Tokens(doc); err == nil {
			return distinctTerms(tokens)
		}
	}
	return m.knownTokens[doc]
}

// TopK implements Method.
func (m *IDMethod) TopK(q Query) (*QueryResult, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.WithTermScores && !m.withTermScores {
		return nil, ErrTermScoresUnsupported
	}

	ctx := newQueryCtx()
	defer ctx.release()
	stats := text.CollectionStats{NumDocs: m.numDocs.Load()}
	for _, term := range q.Terms {
		long, err := m.longIterator(term)
		if err != nil {
			return nil, err
		}
		short, err := m.aux.Iterator(term)
		if err != nil {
			return nil, err
		}
		ctx.streams = append(ctx.streams, combinedStream(short, long))
		ctx.idfs = append(ctx.idfs, text.IDF(stats, m.dict.DocFreq(term)))
	}
	idfs := ctx.idfs

	resolve := m.currentScoreResolver()
	if q.WithTermScores {
		base := resolve
		resolve = func(g postings.Group) (float64, bool, error) {
			svr, include, err := base(g)
			if err != nil || !include {
				return 0, false, err
			}
			combined := svr
			for i, present := range g.Present {
				if present {
					combined += text.TFIDF(g.Entries[i].TermScore, idfs[i])
				}
			}
			return combined, true, nil
		}
	}

	return m.runRanked(rankedQuery{
		streams:     ctx.streams,
		k:           q.K,
		conjunctive: !q.Disjunctive,
		maxPossible: neverStop,
		resolve:     resolve,
	})
}

func (m *IDMethod) longIterator(term string) (postings.BatchIterator, error) {
	ref, ok := m.longRefs[term]
	if !ok {
		return postings.NewSliceIterator(nil), nil
	}
	r := m.store.NewReader(ref)
	if m.withTermScores {
		return postings.NewStreamIDTermList(r)
	}
	return postings.NewStreamIDList(r)
}

// Stats implements Method.
func (m *IDMethod) Stats() Stats {
	s := Stats{
		Method:           m.Name(),
		LongListBytes:    m.longBytes,
		LongListRawBytes: m.longRawBytes,
		ShortListEntries: m.aux.Len(),
		TablePatches:     m.score.Patches() + m.aux.Patches(),
	}
	m.counters.fill(&s)
	m.fillPoolStats(&s)
	return s
}

// diffTerms computes the added and removed distinct terms between two token
// streams (Appendix A.1's Tnew \ Told and Told \ Tnew).
func diffTerms(oldTokens, newTokens []string) (added, removed []string) {
	oldSet := map[string]bool{}
	for _, t := range oldTokens {
		oldSet[t] = true
	}
	newSet := map[string]bool{}
	for _, t := range newTokens {
		newSet[t] = true
	}
	for t := range newSet {
		if !oldSet[t] {
			added = append(added, t)
		}
	}
	for t := range oldSet {
		if !newSet[t] {
			removed = append(removed, t)
		}
	}
	return added, removed
}
