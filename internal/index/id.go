package index

import (
	"fmt"

	"svrdb/internal/postings"
	"svrdb/internal/storage/blob"
	"svrdb/internal/text"
	"svrdb/internal/topk"
)

// IDMethod implements the ID method of §4.2.1 and, when built with term
// scores, the ID-TermScore baseline of §5.2.
//
// The long inverted list of each term holds the IDs of the documents
// containing it in ascending ID order (d-gap compressed), so a score update
// never touches the lists: only the Score table changes.  The price is paid
// at query time: because the lists carry no score information, every list
// must be scanned to the end and every candidate's score looked up, no
// matter how small k is.  The one exception is a multi-term conjunctive
// query, where the intersection itself bounds the work: the query planner
// leapfrogs the lists with SeekDoc so that super-blocks proven (by their
// skip headers) to contain no common document are never decoded or even
// paged in.
//
// Incrementally inserted documents and content updates go to an auxiliary
// ID-ordered short list (Appendix A applies the same mechanism to every
// method); score updates never touch it.
type IDMethod struct {
	*base
	withTermScores bool
	aux            *keyedList
	// knownTokens caches the distinct terms of documents inserted after the
	// bulk build so that deletions can purge their auxiliary postings even if
	// the document source no longer has the row.
	knownTokens map[DocID][]string
}

// NewID creates an ID-method index.
func NewID(cfg Config) (*IDMethod, error) { return newIDMethod(cfg, false) }

// NewIDTermScore creates an ID-TermScore index (the ID method with a
// normalized term weight stored in every posting).
func NewIDTermScore(cfg Config) (*IDMethod, error) { return newIDMethod(cfg, true) }

func newIDMethod(cfg Config, withTermScores bool) (*IDMethod, error) {
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	aux, err := newKeyedList(b.cfg.Pool)
	if err != nil {
		return nil, err
	}
	m := &IDMethod{base: b, withTermScores: withTermScores, aux: aux, knownTokens: map[DocID][]string{}}
	m.initSnapshots()
	return m, nil
}

// initSnapshots wires the auxiliary list into the epoch machinery and
// publishes the initial (empty) snapshot; also used after Restore.
func (m *IDMethod) initSnapshots() {
	m.aux.enableCOW(m.retirePage)
	m.fillExtra = func(s *snap) { s.lists = m.aux.snapshotView() }
	m.publish()
}

// Name implements Method.
func (m *IDMethod) Name() string {
	if m.withTermScores {
		return "ID-TermScore"
	}
	return "ID"
}

// Build implements Method.
func (m *IDMethod) Build(src DocSource, scores ScoreFunc) error {
	m.src = src
	bc, err := accumulate(src, scores, m.dict)
	if err != nil {
		return err
	}
	if err := m.populateScoreTable(bc); err != nil {
		return err
	}
	// Published snapshots share the ref map by pointer, so accumulate into a
	// fresh map and swap it in wholesale.
	refs := make(map[string]blob.Ref, len(bc.termDocs))
	for _, term := range bc.terms() {
		var data []byte
		if m.withTermScores {
			builder := postings.NewIDTermEncoder(!m.cfg.Uncompressed)
			for _, dw := range bc.termDocs[term] {
				if err := builder.Add(dw.doc, dw.w); err != nil {
					return fmt.Errorf("index: build %s list for %q: %w", m.Name(), term, err)
				}
			}
			data = builder.Bytes()
			m.longRawBytes += uint64(builder.Len()) * rawBytesIDTermPosting
		} else {
			builder := postings.NewIDEncoder(!m.cfg.Uncompressed)
			for _, dw := range bc.termDocs[term] {
				if err := builder.Add(dw.doc); err != nil {
					return fmt.Errorf("index: build %s list for %q: %w", m.Name(), term, err)
				}
			}
			data = builder.Bytes()
			m.longRawBytes += uint64(builder.Len()) * rawBytesIDPosting
		}
		ref, err := m.store.Put(data)
		if err != nil {
			return err
		}
		refs[term] = ref
		m.longBytes += uint64(len(data))
	}
	m.longRefs = refs
	m.publish()
	return nil
}

// ApplyUpdates implements Method: the batch replays through the ordinary
// maintenance paths with the Score table and the auxiliary list staged, so
// its tree writes group by leaf.
func (m *IDMethod) ApplyUpdates(batch []Update) error {
	return m.runBatch(m, batch, m.score, m.aux)
}

// UpdateScore implements Method: the only work is one Score-table write.
func (m *IDMethod) UpdateScore(doc DocID, newScore float64) error {
	defer m.publish()
	m.counters.scoreUpdates.Add(1)
	_, _, ok, err := m.score.Get(doc)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownDocument, doc)
	}
	return m.score.Set(doc, newScore)
}

// InsertDocument implements Method.
func (m *IDMethod) InsertDocument(doc DocID, tokens []string, score float64) error {
	defer m.publish()
	if err := m.score.Set(doc, score); err != nil {
		return err
	}
	weights := docTermWeights(tokens)
	distinct := make([]string, 0, len(weights))
	for _, tw := range weights {
		if err := m.aux.Put(tw.term, 0, doc, postings.OpAdd, tw.w); err != nil {
			return err
		}
		m.counters.shortListPostingsWritten.Add(1)
		distinct = append(distinct, tw.term)
	}
	m.dict.AddDocumentTerms(distinct)
	m.knownTokens[doc] = distinct
	m.numDocs.Add(1)
	return nil
}

// DeleteDocument implements Method.
func (m *IDMethod) DeleteDocument(doc DocID) error {
	defer m.publish()
	if err := m.score.MarkDeleted(doc); err != nil {
		return err
	}
	for _, term := range m.docTermsForMaintenance(doc) {
		if err := m.aux.DeleteAllForDoc(term, doc); err != nil {
			return err
		}
	}
	delete(m.knownTokens, doc)
	m.numDocs.Add(-1)
	return nil
}

// UpdateContent implements Method.
func (m *IDMethod) UpdateContent(doc DocID, oldTokens, newTokens []string) error {
	defer m.publish()
	added, removed := diffTerms(oldTokens, newTokens)
	newWeights := text.TermFrequencies(newTokens)
	for _, term := range added {
		w := text.NormalizedTF(newWeights[term], len(newTokens))
		if err := m.aux.Put(term, 0, doc, postings.OpAdd, w); err != nil {
			return err
		}
		m.counters.shortListPostingsWritten.Add(1)
	}
	for _, term := range removed {
		if err := m.aux.Put(term, 0, doc, postings.OpRem, 0); err != nil {
			return err
		}
		m.counters.shortListPostingsWritten.Add(1)
	}
	m.dict.AddDocumentTerms(added)
	m.dict.RemoveDocumentTerms(removed)
	return nil
}

// docTermsForMaintenance returns the distinct terms of a document for purge
// operations, preferring the document source and falling back to the cache
// of incrementally inserted documents.
func (m *IDMethod) docTermsForMaintenance(doc DocID) []string {
	if m.src != nil {
		if tokens, err := m.src.Tokens(doc); err == nil {
			return distinctTerms(tokens)
		}
	}
	return m.knownTokens[doc]
}

// makeResolve builds the candidate resolver: the current-score lookup, plus
// the per-term TFIDF contributions when the query asks for combined ranking.
func (m *IDMethod) makeResolve(s *snap, q Query, idfs []float64) func(g postings.Group) (float64, bool, error) {
	resolve := s.currentScoreResolver()
	if !q.WithTermScores {
		return resolve
	}
	return func(g postings.Group) (float64, bool, error) {
		svr, include, err := resolve(g)
		if err != nil || !include {
			return 0, false, err
		}
		combined := svr
		for i, present := range g.Present {
			if present {
				combined += text.TFIDF(g.Entries[i].TermScore, idfs[i])
			}
		}
		return combined, true, nil
	}
}

// TopK implements Method.
func (m *IDMethod) TopK(q Query) (*QueryResult, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.WithTermScores && !m.withTermScores {
		return nil, ErrTermScoresUnsupported
	}

	s, guard, err := m.acquire()
	if err != nil {
		return nil, err
	}
	defer guard.Leave()

	// Multi-term conjunctive queries with no auxiliary postings intersect
	// via leapfrog seeks instead of scanning every list end to end.
	if !q.Disjunctive && len(q.Terms) > 1 && s.lists.Len() == 0 {
		res, done, err := m.leapfrogTopK(s, q)
		if err != nil {
			return nil, err
		}
		if done {
			return res, nil
		}
		// A list without skip headers (legacy encoding): fall through to
		// the scan-everything merger below.
	}

	ctx := newQueryCtx()
	defer ctx.release()
	for i, term := range q.Terms {
		long, err := m.longIterator(s, term)
		if err != nil {
			return nil, err
		}
		short, err := s.lists.Iterator(term)
		if err != nil {
			return nil, err
		}
		ctx.streams = append(ctx.streams, combinedStream(short, long))
		ctx.idfs = append(ctx.idfs, s.queryIDF(&q, i))
	}

	return m.runRanked(rankedQuery{
		streams:     ctx.streams,
		k:           q.K,
		conjunctive: !q.Disjunctive,
		maxPossible: neverStop,
		resolve:     m.makeResolve(s, q, ctx.idfs),
	})
}

// docSeeker is a posting stream that can reposition forward to the first
// entry at or past a document ID without decoding the skipped range.
type docSeeker interface {
	postings.BatchIterator
	SeekDoc(doc DocID) (bool, error)
}

// leapfrogTopK intersects the query terms' long lists with the classic
// leapfrog join: every stream repeatedly seeks to the maximum head document,
// and only documents all streams agree on are resolved.  SeekDoc proves
// via skip headers that a super-block holds no document >= the target, so
// sparse intersections skip most of every list's pages.  done=false means a
// list does not support seeking (legacy uncompressed blob) and the caller
// must fall back to the merger path; nothing has been counted yet in that
// case.
func (m *IDMethod) leapfrogTopK(s *snap, q Query) (*QueryResult, bool, error) {
	seekers := make([]docSeeker, 0, len(q.Terms))
	idfs := make([]float64, 0, len(q.Terms))
	for i, term := range q.Terms {
		ref, ok := s.longRefs[term]
		if !ok {
			// A term with no long list (and the short lists are empty, or we
			// would not be here) makes the conjunction empty.
			m.counters.queries.Add(1)
			return &QueryResult{Stopped: true}, true, nil
		}
		r := m.store.NewReader(ref)
		var ds docSeeker
		if m.withTermScores {
			st, err := postings.NewStreamIDTermList(r)
			if err != nil {
				return nil, false, err
			}
			ds = st
		} else {
			st, err := postings.NewStreamIDList(r)
			if err != nil {
				return nil, false, err
			}
			ds = st
		}
		seekers = append(seekers, ds)
		idfs = append(idfs, s.queryIDF(&q, i))
	}

	heads := make([]postings.Entry, len(seekers))
	var one [1]postings.Entry
	scanned := 0
	// advance repositions stream i at the first entry >= target and pulls it
	// into heads[i]; alive=false means the list is exhausted (intersection
	// complete).  seekable=false is only possible on the very first call per
	// stream (availability is a property of the blob's encoding).
	advance := func(i int, target DocID) (alive, seekable bool, err error) {
		ok, err := seekers[i].SeekDoc(target)
		if err != nil {
			return false, false, err
		}
		if !ok {
			return false, false, nil
		}
		n, err := seekers[i].NextBatch(one[:])
		if err != nil {
			return false, true, err
		}
		if n == 0 {
			return false, true, nil
		}
		heads[i] = one[0]
		scanned++
		return true, true, nil
	}

	// Position every stream on its first posting; detect legacy blobs here,
	// before any result state exists, so the fallback restarts cleanly.
	for i := range seekers {
		alive, seekable, err := advance(i, 0)
		if err != nil {
			return nil, false, err
		}
		if !seekable {
			return nil, false, nil
		}
		if !alive {
			m.counters.queries.Add(1)
			return &QueryResult{Stopped: true}, true, nil
		}
	}

	m.counters.queries.Add(1)
	heap := topk.New(q.K)
	res := &QueryResult{}
	resolve := m.makeResolve(s, q, idfs)
	group := postings.Group{
		Entries: make([]postings.Entry, len(seekers)),
		Present: make([]bool, len(seekers)),
		Count:   len(seekers),
	}
	for i := range group.Present {
		group.Present[i] = true
	}

loop:
	for {
		target := heads[0].Doc
		for i := 1; i < len(heads); i++ {
			if heads[i].Doc > target {
				target = heads[i].Doc
			}
		}
		aligned := true
		for i := range heads {
			if heads[i].Doc < target {
				alive, _, err := advance(i, target)
				if err != nil {
					return nil, false, err
				}
				if !alive {
					break loop
				}
				if heads[i].Doc != target {
					aligned = false
				}
			}
		}
		if !aligned {
			continue
		}
		group.Doc = target
		copy(group.Entries, heads)
		score, include, err := resolve(group)
		if err != nil {
			return nil, false, err
		}
		if include {
			heap.Add(int64(target), score)
		}
		for i := range heads {
			alive, _, err := advance(i, target+1)
			if err != nil {
				return nil, false, err
			}
			if !alive {
				break loop
			}
		}
	}

	res.Results = heap.Results()
	res.PostingsScanned = scanned
	m.counters.postingsScanned.Add(uint64(scanned))
	return res, true, nil
}

func (m *IDMethod) longIterator(s *snap, term string) (postings.BatchIterator, error) {
	ref, ok := s.longRefs[term]
	if !ok {
		return postings.NewSliceIterator(nil), nil
	}
	r := m.store.NewReader(ref)
	if m.withTermScores {
		return postings.NewStreamIDTermList(r)
	}
	return postings.NewStreamIDList(r)
}

// Stats implements Method.
func (m *IDMethod) Stats() Stats {
	s, guard, err := m.acquire()
	if err != nil {
		return Stats{Method: m.Name()}
	}
	defer guard.Leave()
	st := Stats{
		Method:           m.Name(),
		LongListBytes:    s.longBytes,
		LongListRawBytes: s.longRawBytes,
		ShortListEntries: s.lists.Len(),
		TablePatches:     s.score.Patches() + s.lists.Patches(),
	}
	m.counters.fill(&st)
	m.fillPoolStats(&st)
	m.fillEpochStats(&st)
	return st
}

// diffTerms computes the added and removed distinct terms between two token
// streams (Appendix A.1's Tnew \ Told and Told \ Tnew).
func diffTerms(oldTokens, newTokens []string) (added, removed []string) {
	oldSet := map[string]bool{}
	for _, t := range oldTokens {
		oldSet[t] = true
	}
	newSet := map[string]bool{}
	for _, t := range newTokens {
		newSet[t] = true
	}
	for t := range newSet {
		if !oldSet[t] {
			added = append(added, t)
		}
	}
	for t := range oldSet {
		if !newSet[t] {
			removed = append(removed, t)
		}
	}
	return added, removed
}
