package index

// This file implements ReleasePages, the storage half of an online index
// drop: every page the method's structures occupy — the Score table, the
// mutable keyed list, the ListScore/ListChunk table, the long-list blobs and
// the fancy lists — is handed back for recycling.  Published pages are
// retired to the epoch manager (a racing reader pinned to the last snapshot
// may still traverse them) and fresh pages recycle immediately; the caller
// then Drains the method, which waits for those readers to leave and moves
// every retired page onto the pagefile free list.  The method must be fenced
// from writers before the call and must not be used afterwards.

// releaseBase retires the structures every method shares: the Score table's
// tree and the long-list blobs.
func (b *base) releaseBase() error {
	if err := b.score.tree.RetireAll(); err != nil {
		return err
	}
	b.retireBlobRefs(b.longRefs)
	return nil
}

// ReleasePages implements Method.
func (m *IDMethod) ReleasePages() error {
	if err := m.releaseBase(); err != nil {
		return err
	}
	return m.aux.tree.RetireAll()
}

// ReleasePages implements Method.
func (m *ScoreMethod) ReleasePages() error {
	if err := m.releaseBase(); err != nil {
		return err
	}
	return m.lists.tree.RetireAll()
}

// ReleasePages implements Method.
func (m *ScoreThresholdMethod) ReleasePages() error {
	if err := m.releaseBase(); err != nil {
		return err
	}
	if err := m.short.tree.RetireAll(); err != nil {
		return err
	}
	return m.listScore.tree.RetireAll()
}

// ReleasePages implements Method.
func (m *ChunkMethod) ReleasePages() error {
	if err := m.releaseBase(); err != nil {
		return err
	}
	if err := m.short.tree.RetireAll(); err != nil {
		return err
	}
	return m.listChunk.tree.RetireAll()
}

// ReleasePages implements Method.
func (m *ChunkTermScoreMethod) ReleasePages() error {
	if err := m.ChunkMethod.ReleasePages(); err != nil {
		return err
	}
	m.retireBlobRefs(m.fancyRefs)
	return nil
}
