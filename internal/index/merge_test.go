package index

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestMergeShortListsPreservesResults verifies that after a heavy update
// workload (score updates, insertions, deletions, content updates) the
// offline merge empties the short lists, shrinks the ListScore/ListChunk
// bookkeeping work, and — most importantly — leaves query results identical
// to the pre-merge answers (which the oracle tests already prove correct).
func TestMergeShortListsPreservesResults(t *testing.T) {
	vocab := []string{"amber", "basalt", "cedar", "dune", "ember", "fjord", "grove", "heath"}
	const nDocs = 150
	makeCorpus := func() *testCorpus {
		rng := rand.New(rand.NewSource(99))
		corpus := newTestCorpus()
		for i := 0; i < nDocs; i++ {
			n := rng.Intn(5) + 2
			words := make([]string, n)
			for j := range words {
				words[j] = vocab[rng.Intn(len(vocab))]
			}
			corpus.add(DocID(i+1), float64(rng.Intn(100000)), strings.Join(words, " "))
		}
		return corpus
	}

	for name, ctor := range allConstructors() {
		t.Run(name, func(t *testing.T) {
			corpus := makeCorpus()
			m := buildMethod(t, name, ctor, corpus)
			o := newOracle(corpus)
			localRng := rand.New(rand.NewSource(5))

			// Score updates, some of them dramatic.
			for u := 0; u < 300; u++ {
				doc := DocID(localRng.Intn(nDocs) + 1)
				newScore := float64(localRng.Intn(500000))
				if err := m.UpdateScore(doc, newScore); err != nil {
					t.Fatal(err)
				}
				o.scores[doc] = newScore
			}
			// A few insertions.
			for i := 0; i < 10; i++ {
				doc := DocID(nDocs + 100 + i)
				content := vocab[i%len(vocab)] + " " + vocab[(i+3)%len(vocab)]
				tokens := strings.Fields(content)
				score := float64(localRng.Intn(200000))
				if err := m.InsertDocument(doc, tokens, score); err != nil {
					t.Fatal(err)
				}
				corpus.add(doc, score, content)
				o.setTokens(doc, tokens)
				o.scores[doc] = score
			}
			// A deletion.
			if err := m.DeleteDocument(7); err != nil {
				t.Fatal(err)
			}
			o.deleted[7] = true

			queries := [][]string{{"amber"}, {"cedar", "dune"}, {"fjord", "grove"}}
			before := map[string][]float64{}
			for _, q := range queries {
				res, err := m.TopK(Query{Terms: q, K: 8})
				if err != nil {
					t.Fatal(err)
				}
				before[strings.Join(q, "+")] = resultScores(res.Results)
				// Sanity: pre-merge results match the oracle.
				checkTopKScores(t, name+" pre-merge "+strings.Join(q, "+"), res.Results, o.topK(q, 8, false))
			}

			if err := m.MergeShortLists(); err != nil {
				t.Fatalf("MergeShortLists: %v", err)
			}
			if name != "Score" {
				if got := m.Stats().ShortListEntries; got != 0 {
					t.Errorf("short lists not empty after merge: %d entries", got)
				}
			}
			for _, q := range queries {
				res, err := m.TopK(Query{Terms: q, K: 8})
				if err != nil {
					t.Fatalf("TopK after merge: %v", err)
				}
				checkTopKScores(t, name+" post-merge "+strings.Join(q, "+"), res.Results, before[strings.Join(q, "+")])
			}

			// The index must remain fully usable after the merge: more
			// updates and queries keep matching the oracle.
			for u := 0; u < 100; u++ {
				doc := DocID(localRng.Intn(nDocs) + 1)
				if o.deleted[doc] {
					continue
				}
				newScore := float64(localRng.Intn(300000))
				if err := m.UpdateScore(doc, newScore); err != nil {
					t.Fatal(err)
				}
				o.scores[doc] = newScore
			}
			for _, q := range queries {
				res, err := m.TopK(Query{Terms: q, K: 8})
				if err != nil {
					t.Fatal(err)
				}
				checkTopKScores(t, name+" post-merge updates "+strings.Join(q, "+"), res.Results, o.topK(q, 8, false))
			}
		})
	}
}

func TestMergeRestoresQueryEfficiency(t *testing.T) {
	// After many flash-crowd updates the Chunk method accumulates short-list
	// postings; the offline merge folds them back so queries scan fewer
	// postings again.
	corpus := newTestCorpus()
	rng := rand.New(rand.NewSource(17))
	const nDocs = 2000
	for i := 0; i < nDocs; i++ {
		corpus.add(DocID(i+1), float64(rng.Intn(100000)), "common term"+fmt.Sprint(i%7))
	}
	m := buildMethod(t, "Chunk", func(c Config) (Method, error) { return NewChunk(c) }, corpus)

	// Flash crowd: many documents jump far above their chunk.
	for i := 0; i < 400; i++ {
		doc := DocID(rng.Intn(nDocs) + 1)
		if err := m.UpdateScore(doc, float64(1_000_000+rng.Intn(1_000_000))); err != nil {
			t.Fatal(err)
		}
	}
	if m.Stats().ShortListEntries == 0 {
		t.Fatal("expected short-list postings after flash-crowd updates")
	}
	q := Query{Terms: []string{"common"}, K: 5}
	beforeRes, err := m.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.MergeShortLists(); err != nil {
		t.Fatal(err)
	}
	afterRes, err := m.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	checkTopKScores(t, "merge efficiency", afterRes.Results, resultScores(beforeRes.Results))
	if m.Stats().ShortListEntries != 0 {
		t.Errorf("short lists should be empty after merge, have %d", m.Stats().ShortListEntries)
	}
	if afterRes.PostingsScanned > beforeRes.PostingsScanned {
		t.Errorf("merge should not increase postings scanned: before %d, after %d",
			beforeRes.PostingsScanned, afterRes.PostingsScanned)
	}
}
