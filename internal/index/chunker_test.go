package index

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChunkerBasicAssignment(t *testing.T) {
	scores := []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	ch := buildChunker(scores, 4, 2)
	if ch.NumChunks() < 2 {
		t.Fatalf("expected multiple chunks, got %d", ch.NumChunks())
	}
	// Higher scores must never land in lower chunks.
	prev := int32(0)
	for _, s := range scores {
		cid := ch.ChunkOf(s)
		if cid < prev {
			t.Errorf("chunk of %g (%d) below chunk of smaller score (%d)", s, cid, prev)
		}
		prev = cid
	}
}

func TestChunkerBounds(t *testing.T) {
	scores := make([]float64, 1000)
	rng := rand.New(rand.NewSource(1))
	for i := range scores {
		scores[i] = rng.Float64() * 100000
	}
	ch := buildChunker(scores, 6.12, 10)
	for _, s := range scores {
		cid := ch.ChunkOf(s)
		if cid < 1 || int(cid) > ch.NumChunks() {
			t.Fatalf("chunk of %g = %d out of range [1,%d]", s, cid, ch.NumChunks())
		}
		if s < ch.LowerBound(cid) || s >= ch.UpperBound(cid) {
			t.Fatalf("score %g not within chunk %d bounds [%g,%g)", s, cid, ch.LowerBound(cid), ch.UpperBound(cid))
		}
	}
	// Top chunk's upper bound must be +Inf, below-range chunk handling sane.
	if !math.IsInf(ch.UpperBound(int32(ch.NumChunks())), 1) {
		t.Error("top chunk upper bound should be +Inf")
	}
	if ch.ChunkOf(-5) != 1 {
		t.Error("negative scores should map to chunk 1")
	}
	if ch.LowerBound(0) != 0 {
		t.Error("LowerBound of clamped chunk should be 0")
	}
	if !math.IsInf(ch.LowerBound(int32(ch.NumChunks())+5), 1) {
		t.Error("LowerBound beyond the top chunk should be +Inf")
	}
}

func TestChunkerMinSize(t *testing.T) {
	// With a large minimum size, all documents collapse into few chunks.
	scores := make([]float64, 100)
	for i := range scores {
		scores[i] = float64(i + 1)
	}
	ch := buildChunker(scores, 1.5, 50)
	if ch.NumChunks() > 3 {
		t.Errorf("minimum chunk size not honoured: %d chunks for 100 docs with min 50", ch.NumChunks())
	}
}

func TestChunkerRatioControlsChunkCount(t *testing.T) {
	scores := make([]float64, 2000)
	rng := rand.New(rand.NewSource(2))
	for i := range scores {
		scores[i] = math.Pow(10, rng.Float64()*5) // 1 .. 100000, log-uniform
	}
	small := buildChunker(scores, 1.6, 5)
	large := buildChunker(scores, 100, 5)
	if small.NumChunks() <= large.NumChunks() {
		t.Errorf("smaller ratio should produce more chunks: ratio 1.6 -> %d, ratio 100 -> %d",
			small.NumChunks(), large.NumChunks())
	}
}

func TestChunkerDegenerateInputs(t *testing.T) {
	// All-equal scores: a single chunk.
	ch := buildChunker([]float64{7, 7, 7, 7}, 6, 1)
	if ch.NumChunks() != 1 {
		t.Errorf("equal scores produced %d chunks, want 1", ch.NumChunks())
	}
	// Empty input still yields a usable single chunk covering everything.
	empty := buildChunker(nil, 6, 10)
	if empty.NumChunks() != 1 || empty.ChunkOf(123) != 1 {
		t.Errorf("empty chunker misbehaves: %d chunks", empty.NumChunks())
	}
	// Invalid ratio and min size are clamped rather than panicking.
	clamped := buildChunker([]float64{1, 10, 100}, 0.5, 0)
	if clamped.NumChunks() < 1 {
		t.Error("clamped chunker has no chunks")
	}
}

func TestUniformChunker(t *testing.T) {
	ch := uniformChunker(1000, 10)
	if ch.NumChunks() != 10 {
		t.Fatalf("uniform chunker has %d chunks, want 10", ch.NumChunks())
	}
	if ch.ChunkOf(50) != 1 || ch.ChunkOf(950) != 10 {
		t.Errorf("uniform assignment wrong: %d, %d", ch.ChunkOf(50), ch.ChunkOf(950))
	}
	if got := uniformChunker(-5, 0); got.NumChunks() != 1 {
		t.Errorf("degenerate uniform chunker has %d chunks", got.NumChunks())
	}
}

func TestChunkOfMonotonicProperty(t *testing.T) {
	scores := make([]float64, 500)
	rng := rand.New(rand.NewSource(3))
	for i := range scores {
		scores[i] = rng.Float64() * 100000
	}
	ch := buildChunker(scores, 6.12, 10)
	f := func(a, b float64) bool {
		a = math.Abs(a)
		b = math.Abs(b)
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		ca, cb := ch.ChunkOf(a), ch.ChunkOf(b)
		if a < b {
			return ca <= cb
		}
		if a > b {
			return ca >= cb
		}
		return ca == cb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestThresholdChunk(t *testing.T) {
	if thresholdChunk(3) != 4 {
		t.Errorf("thresholdChunk(3) = %d, want 4", thresholdChunk(3))
	}
}
