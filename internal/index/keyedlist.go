package index

import (
	"fmt"

	"svrdb/internal/codec"
	"svrdb/internal/postings"
	"svrdb/internal/storage/btree"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
)

// keyedList is a B+-tree-backed posting list keyed by
// (term, sortKey descending, docID ascending) and is used for
//
//   - every method's short lists (§4.3.1, §4.3.2): sortKey is the stale list
//     score (Score-Threshold) or the chunk ID (Chunk family);
//   - the Score method's clustered long lists (§4.2.2): sortKey is the exact
//     document score and the list is updated in place on every score update;
//   - the ID family's auxiliary lists for incrementally inserted documents:
//     sortKey is 0 so postings order purely by docID.
//
// Each posting's value carries the ADD/REM operation flag needed for content
// updates (Appendix A.1) and, for the TermScore methods, the per-posting
// term weight.
// During a write batch the list runs in staged mode: Put/Delete collect in
// an ordered op log collapsed per key (last op wins, matching sequential
// semantics), and flushBatch applies the log to the B+-tree as one sorted
// UpsertBatch plus one sorted DeleteBatch, so a batch that writes many
// postings of one term rewrites each touched leaf once.
type keyedList struct {
	tree    *btree.Tree
	entries int
	// retire receives superseded pages once copy-on-write snapshots are
	// enabled (see enableCOW); nil means the list recycles pages eagerly.
	retire func(pagefile.PageID)

	staged bool
	ops    []keyedOp
	opIdx  map[string]int
	// docOps indexes staged op positions by (term, doc) so DeleteAllForDoc
	// can cancel a document's staged postings without sweeping the log.
	docOps map[string][]int
}

// keyedOp is one staged write: a pending upsert (del == false) or delete.
type keyedOp struct {
	key []byte
	val []byte
	del bool
}

func newKeyedList(pool *buffer.Pool) (*keyedList, error) {
	tree, err := btree.New(pool)
	if err != nil {
		return nil, err
	}
	return &keyedList{tree: tree}, nil
}

// enableCOW switches the list's tree to copy-on-write publication: sealed
// pages superseded by later writes flow to retire instead of the free list,
// so published snapshots stay readable until their epoch drains.
func (l *keyedList) enableCOW(retire func(pagefile.PageID)) {
	l.retire = retire
	l.tree.EnableCOW(retire)
}

// snapshotView seals the tree and captures a frozen keyedView of its
// current contents for publication.
func (l *keyedList) snapshotView() keyedView {
	l.tree.Seal()
	return keyedView{view: l.tree.View(), entries: l.entries, patches: l.tree.Patches()}
}

// liveView captures an unsealed view of the current tree; valid only while
// no writer runs (single-threaded callers such as tests and build paths).
func (l *keyedList) liveView() keyedView {
	return keyedView{view: l.tree.View(), entries: l.entries, patches: l.tree.Patches()}
}

// Len reports the number of postings in the list.
func (l *keyedList) Len() int { return l.entries }

// Patches reports how many posting writes the list's tree absorbed in place.
// Posting values are fixed-width (op byte + float32 weight), so a Put that
// re-records an existing (term, sortKey, doc) posting — e.g. a short-list
// rewrite of a document already present at that rank, or a clustered-list
// weight refresh — qualifies for the patch path.
func (l *keyedList) Patches() uint64 { return l.tree.Patches() }

func keyedListKey(term string, sortKey float64, doc DocID) []byte {
	key := codec.PutOrderedString(nil, term)
	key = codec.PutOrderedFloat64Desc(key, sortKey)
	return codec.PutOrderedUint64(key, uint64(doc))
}

func keyedListPrefix(term string) []byte {
	return codec.PutOrderedString(nil, term)
}

func decodeKeyedListKey(key []byte) (term string, sortKey float64, doc DocID, err error) {
	term, n, err := codec.OrderedString(key)
	if err != nil {
		return "", 0, 0, err
	}
	sortKey, m, err := codec.OrderedFloat64Desc(key[n:])
	if err != nil {
		return "", 0, 0, err
	}
	id, _, err := codec.OrderedUint64(key[n+m:])
	if err != nil {
		return "", 0, 0, err
	}
	return term, sortKey, DocID(id), nil
}

func encodeKeyedListValue(op postings.Op, termScore float32) []byte {
	out := []byte{byte(op)}
	return codec.PutFloat32(out, termScore)
}

func decodeKeyedListValue(data []byte) (op postings.Op, termScore float32, err error) {
	if len(data) == 0 {
		return postings.OpAdd, 0, nil
	}
	op = postings.Op(data[0])
	if len(data) >= 5 {
		ts, _, err := codec.Float32(data[1:])
		if err != nil {
			return 0, 0, err
		}
		termScore = ts
	}
	return op, termScore, nil
}

// Put inserts or replaces the posting for (term, sortKey, doc).
func (l *keyedList) Put(term string, sortKey float64, doc DocID, op postings.Op, termScore float32) error {
	key := keyedListKey(term, sortKey, doc)
	if l.staged {
		l.stageOp(term, doc, key, encodeKeyedListValue(op, termScore), false)
		return nil
	}
	inserted, err := l.tree.Upsert(key, encodeKeyedListValue(op, termScore))
	if err != nil {
		return err
	}
	if inserted {
		l.entries++
	}
	return nil
}

// Delete removes the posting for (term, sortKey, doc) if present.
func (l *keyedList) Delete(term string, sortKey float64, doc DocID) error {
	key := keyedListKey(term, sortKey, doc)
	if l.staged {
		l.stageOp(term, doc, key, nil, true)
		return nil
	}
	removed, err := l.tree.Delete(key)
	if err != nil {
		return err
	}
	if removed {
		l.entries--
	}
	return nil
}

// docOpKey addresses the staged ops of one (term, doc) pair.
func docOpKey(term string, doc DocID) string {
	return string(codec.PutOrderedUint64(codec.PutOrderedString(nil, term), uint64(doc)))
}

// stageOp records a write in the op log, collapsing onto any earlier op for
// the same key (last op wins, exactly as sequential application would).
func (l *keyedList) stageOp(term string, doc DocID, key, val []byte, del bool) {
	if i, ok := l.opIdx[string(key)]; ok {
		l.ops[i].val = val
		l.ops[i].del = del
		return
	}
	l.opIdx[string(key)] = len(l.ops)
	dk := docOpKey(term, doc)
	l.docOps[dk] = append(l.docOps[dk], len(l.ops))
	l.ops = append(l.ops, keyedOp{key: key, val: val, del: del})
}

// DeleteAllForDoc removes every posting of the given document under the
// given term, regardless of sort key (used by document deletion, which must
// purge short lists so that reused IDs are safe, Appendix A.2).
func (l *keyedList) DeleteAllForDoc(term string, doc DocID) error {
	var keys [][]byte
	err := l.tree.AscendPrefix(keyedListPrefix(term), func(k, v []byte) bool {
		_, _, d, err := decodeKeyedListKey(k)
		if err == nil && d == doc {
			keys = append(keys, append([]byte(nil), k...))
		}
		return true
	})
	if err != nil {
		return err
	}
	if l.staged {
		// Cancel staged postings of this (term, doc) that are not in the
		// tree yet; docOps addresses them directly.
		for _, i := range l.docOps[docOpKey(term, doc)] {
			l.ops[i].val = nil
			l.ops[i].del = true
		}
		for _, k := range keys {
			l.stageOp(term, doc, k, nil, true)
		}
		return nil
	}
	for _, k := range keys {
		removed, err := l.tree.Delete(k)
		if err != nil {
			return err
		}
		if removed {
			l.entries--
		}
	}
	return nil
}

// beginBatch enters staged mode.
func (l *keyedList) beginBatch() {
	l.staged = true
	if l.opIdx == nil {
		l.opIdx = map[string]int{}
		l.docOps = map[string][]int{}
	}
}

// flushBatch applies the op log with grouped tree writes and leaves staged
// mode.
func (l *keyedList) flushBatch() error {
	l.staged = false
	if len(l.ops) == 0 {
		return nil
	}
	items := make([]btree.Item, 0, len(l.ops))
	var dels [][]byte
	for i := range l.ops {
		if l.ops[i].del {
			dels = append(dels, l.ops[i].key)
		} else {
			items = append(items, btree.Item{Key: l.ops[i].key, Value: l.ops[i].val})
		}
	}
	l.ops = l.ops[:0]
	clear(l.opIdx)
	clear(l.docOps)
	if _, err := l.tree.UpsertBatch(items); err != nil {
		l.entries = l.tree.Len()
		return err
	}
	if len(dels) > 0 {
		if _, err := l.tree.DeleteBatch(dels); err != nil {
			l.entries = l.tree.Len()
			return err
		}
	}
	l.entries = l.tree.Len()
	return nil
}

// keyedListBulkFill is the node fill target for bulk-loaded keyed lists.
// The only bulk-loaded keyedList is the Score method's clustered long
// lists, which every score update rewrites in place; like the Score table
// they are loaded at roughly upsert occupancy so the per-update leaf
// rewrite does not grow with packing density.  Queries scan only a top-k
// prefix of each list, so they are nearly insensitive to the fill.
const keyedListBulkFill = 0.6

// bulkLoad replaces the (empty) tree with one bulk-built from items, which
// must be in ascending key order; used by the Score method's Build so that
// its clustered long lists are leaf-packed instead of grown one Upsert at a
// time.
func (l *keyedList) bulkLoad(pool *buffer.Pool, items []btree.Item) error {
	tree, err := btree.BulkLoadFill(pool, items, keyedListBulkFill)
	if err != nil {
		return err
	}
	old := l.tree
	l.tree = tree
	l.entries = tree.Len()
	if l.retire != nil {
		// Bulk loading produced a plain tree; re-enable COW on it and retire
		// the replaced tree's pages (they may still be pinned by published
		// snapshots).
		tree.EnableCOW(l.retire)
		return old.RetireAll()
	}
	return nil
}

// keyedView is a frozen, read-only image of a keyedList: the tree view
// captured at publication plus the counters queries report.  All query-path
// reads (Collect, Iterator, Cursor, SizeBytes) run against a view so that
// they see exactly one publication regardless of concurrent writers.
type keyedView struct {
	view    btree.View
	entries int
	patches uint64
}

// Len reports the number of postings captured in the view.
func (v keyedView) Len() int { return v.entries }

// Patches reports the in-place patch count at capture time.
func (v keyedView) Patches() uint64 { return v.patches }

// Collect materializes the postings of one term in (sortKey desc, doc asc)
// order.  Short lists are small by design (that is the point of the
// threshold), so materializing them per query is cheap; the Score method
// overrides this with a streaming cursor (see treeCursor).
func (v keyedView) Collect(term string) ([]postings.Entry, error) {
	var out []postings.Entry
	var innerErr error
	err := v.view.AscendPrefix(keyedListPrefix(term), func(k, val []byte) bool {
		_, sortKey, doc, err := decodeKeyedListKey(k)
		if err != nil {
			innerErr = err
			return false
		}
		op, ts, err := decodeKeyedListValue(val)
		if err != nil {
			innerErr = err
			return false
		}
		out = append(out, postings.Entry{
			Doc:       doc,
			SortKey:   sortKey,
			CID:       int32(sortKey),
			TermScore: ts,
			Op:        op,
			FromShort: true,
		})
		return true
	})
	if innerErr != nil {
		return nil, innerErr
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Iterator returns a pull iterator over one term's postings, materialized up
// front.  It satisfies both postings.Iterator and postings.BatchIterator.
func (v keyedView) Iterator(term string) (*postings.SliceIterator, error) {
	entries, err := v.Collect(term)
	if err != nil {
		return nil, err
	}
	return postings.NewSliceIterator(entries), nil
}

// Collect materializes one term's postings from the live tree; single-
// threaded callers only.
func (l *keyedList) Collect(term string) ([]postings.Entry, error) {
	return l.liveView().Collect(term)
}

// Iterator mirrors keyedView.Iterator over the live tree.
func (l *keyedList) Iterator(term string) (*postings.SliceIterator, error) {
	return l.liveView().Iterator(term)
}

// treeCursor is a streaming pull iterator over a keyedList term, used for
// the Score method's long lists where materializing the whole list would
// defeat early termination.  It pulls postings in batches through bounded
// range scans so that an early-terminating query touches only a prefix of
// the B+-tree leaves.
type treeCursor struct {
	view      btree.View
	term      string
	fromShort bool

	batch   []postings.Entry
	pos     int
	nextKey []byte // resume position (exclusive)
	done    bool
}

// cursorBatchSize is the number of postings fetched per refill; roughly one
// leaf page worth and one downstream batch.
const cursorBatchSize = postings.BatchSize

func (v keyedView) Cursor(term string, fromShort bool) *treeCursor {
	return &treeCursor{view: v.view, term: term, fromShort: fromShort, nextKey: keyedListPrefix(term)}
}

// Cursor streams one term's postings from the live tree; single-threaded
// callers only.
func (l *keyedList) Cursor(term string, fromShort bool) *treeCursor {
	return l.liveView().Cursor(term, fromShort)
}

func (c *treeCursor) refill() error {
	c.batch = c.batch[:0]
	c.pos = 0
	if c.done {
		return nil
	}
	prefix := keyedListPrefix(c.term)
	end := prefixEnd(prefix)
	var innerErr error
	var lastKey []byte
	count := 0
	stopped := false
	err := c.view.AscendRange(c.nextKey, end, func(k, v []byte) bool {
		if count >= cursorBatchSize {
			// Remember where to resume: the current key (it has not been
			// consumed into the batch).
			c.nextKey = append(c.nextKey[:0], k...)
			stopped = true
			return false
		}
		_, sortKey, doc, err := decodeKeyedListKey(k)
		if err != nil {
			innerErr = err
			return false
		}
		op, ts, err := decodeKeyedListValue(v)
		if err != nil {
			innerErr = err
			return false
		}
		c.batch = append(c.batch, postings.Entry{
			Doc:       doc,
			SortKey:   sortKey,
			CID:       int32(sortKey),
			TermScore: ts,
			Op:        op,
			FromShort: c.fromShort,
		})
		lastKey = append(lastKey[:0], k...)
		count++
		return true
	})
	if innerErr != nil {
		return innerErr
	}
	if err != nil {
		return err
	}
	if !stopped {
		if count < cursorBatchSize {
			c.done = true
		} else {
			// The scan ended exactly at a full batch, so there was no extra
			// key to stash as the resume point.  Resume just past the last
			// consumed key; if nothing follows, the next refill comes back
			// empty and finishes the cursor.
			c.nextKey = append(append(c.nextKey[:0], lastKey...), 0)
		}
	}
	return nil
}

// Next implements postings.Iterator.
func (c *treeCursor) Next() (postings.Entry, bool, error) {
	for c.pos >= len(c.batch) {
		if c.done {
			return postings.Entry{}, false, nil
		}
		if err := c.refill(); err != nil {
			return postings.Entry{}, false, err
		}
		if len(c.batch) == 0 && c.done {
			return postings.Entry{}, false, nil
		}
	}
	e := c.batch[c.pos]
	c.pos++
	return e, true, nil
}

// NextBatch implements postings.BatchIterator: postings are bulk-copied out
// of the cursor's range-scan batch, one B+-tree leaf run at a time.
func (c *treeCursor) NextBatch(out []postings.Entry) (int, error) {
	n := 0
	for n < len(out) {
		if c.pos >= len(c.batch) {
			if c.done {
				break
			}
			if err := c.refill(); err != nil {
				return n, err
			}
			if len(c.batch) == 0 {
				continue
			}
		}
		copied := copy(out[n:], c.batch[c.pos:])
		n += copied
		c.pos += copied
	}
	return n, nil
}

// prefixEnd mirrors btree.prefixEnd for range termination.
func prefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}

// SizeBytes estimates the serialized size of the list: key plus value bytes
// for every posting.  It is used for the Score method's Table 1 entry.
func (v keyedView) SizeBytes() (uint64, error) {
	var total uint64
	err := v.view.Ascend(func(k, val []byte) bool {
		total += uint64(len(k) + len(val))
		return true
	})
	return total, err
}

// SizeBytes mirrors keyedView.SizeBytes over the live tree.
func (l *keyedList) SizeBytes() (uint64, error) {
	return l.liveView().SizeBytes()
}

func (l *keyedList) String() string {
	return fmt.Sprintf("keyedList(%d postings)", l.entries)
}
