package index

import (
	"fmt"

	"svrdb/internal/codec"
	"svrdb/internal/postings"
	"svrdb/internal/storage/btree"
	"svrdb/internal/storage/buffer"
)

// keyedList is a B+-tree-backed posting list keyed by
// (term, sortKey descending, docID ascending) and is used for
//
//   - every method's short lists (§4.3.1, §4.3.2): sortKey is the stale list
//     score (Score-Threshold) or the chunk ID (Chunk family);
//   - the Score method's clustered long lists (§4.2.2): sortKey is the exact
//     document score and the list is updated in place on every score update;
//   - the ID family's auxiliary lists for incrementally inserted documents:
//     sortKey is 0 so postings order purely by docID.
//
// Each posting's value carries the ADD/REM operation flag needed for content
// updates (Appendix A.1) and, for the TermScore methods, the per-posting
// term weight.
type keyedList struct {
	tree    *btree.Tree
	entries int
}

func newKeyedList(pool *buffer.Pool) (*keyedList, error) {
	tree, err := btree.New(pool)
	if err != nil {
		return nil, err
	}
	return &keyedList{tree: tree}, nil
}

// Len reports the number of postings in the list.
func (l *keyedList) Len() int { return l.entries }

func keyedListKey(term string, sortKey float64, doc DocID) []byte {
	key := codec.PutOrderedString(nil, term)
	key = codec.PutOrderedFloat64Desc(key, sortKey)
	return codec.PutOrderedUint64(key, uint64(doc))
}

func keyedListPrefix(term string) []byte {
	return codec.PutOrderedString(nil, term)
}

func decodeKeyedListKey(key []byte) (term string, sortKey float64, doc DocID, err error) {
	term, n, err := codec.OrderedString(key)
	if err != nil {
		return "", 0, 0, err
	}
	sortKey, m, err := codec.OrderedFloat64Desc(key[n:])
	if err != nil {
		return "", 0, 0, err
	}
	id, _, err := codec.OrderedUint64(key[n+m:])
	if err != nil {
		return "", 0, 0, err
	}
	return term, sortKey, DocID(id), nil
}

func encodeKeyedListValue(op postings.Op, termScore float32) []byte {
	out := []byte{byte(op)}
	return codec.PutFloat32(out, termScore)
}

func decodeKeyedListValue(data []byte) (op postings.Op, termScore float32, err error) {
	if len(data) == 0 {
		return postings.OpAdd, 0, nil
	}
	op = postings.Op(data[0])
	if len(data) >= 5 {
		ts, _, err := codec.Float32(data[1:])
		if err != nil {
			return 0, 0, err
		}
		termScore = ts
	}
	return op, termScore, nil
}

// Put inserts or replaces the posting for (term, sortKey, doc).
func (l *keyedList) Put(term string, sortKey float64, doc DocID, op postings.Op, termScore float32) error {
	key := keyedListKey(term, sortKey, doc)
	inserted, err := l.tree.Upsert(key, encodeKeyedListValue(op, termScore))
	if err != nil {
		return err
	}
	if inserted {
		l.entries++
	}
	return nil
}

// Delete removes the posting for (term, sortKey, doc) if present.
func (l *keyedList) Delete(term string, sortKey float64, doc DocID) error {
	removed, err := l.tree.Delete(keyedListKey(term, sortKey, doc))
	if err != nil {
		return err
	}
	if removed {
		l.entries--
	}
	return nil
}

// DeleteAllForDoc removes every posting of the given document under the
// given term, regardless of sort key (used by document deletion, which must
// purge short lists so that reused IDs are safe, Appendix A.2).
func (l *keyedList) DeleteAllForDoc(term string, doc DocID) error {
	var keys [][]byte
	err := l.tree.AscendPrefix(keyedListPrefix(term), func(k, v []byte) bool {
		_, _, d, err := decodeKeyedListKey(k)
		if err == nil && d == doc {
			keys = append(keys, append([]byte(nil), k...))
		}
		return true
	})
	if err != nil {
		return err
	}
	for _, k := range keys {
		removed, err := l.tree.Delete(k)
		if err != nil {
			return err
		}
		if removed {
			l.entries--
		}
	}
	return nil
}

// Collect materializes the postings of one term in (sortKey desc, doc asc)
// order.  Short lists are small by design (that is the point of the
// threshold), so materializing them per query is cheap; the Score method
// overrides this with a streaming cursor (see treeCursor).
func (l *keyedList) Collect(term string) ([]postings.Entry, error) {
	var out []postings.Entry
	var innerErr error
	err := l.tree.AscendPrefix(keyedListPrefix(term), func(k, v []byte) bool {
		_, sortKey, doc, err := decodeKeyedListKey(k)
		if err != nil {
			innerErr = err
			return false
		}
		op, ts, err := decodeKeyedListValue(v)
		if err != nil {
			innerErr = err
			return false
		}
		out = append(out, postings.Entry{
			Doc:       doc,
			SortKey:   sortKey,
			CID:       int32(sortKey),
			TermScore: ts,
			Op:        op,
			FromShort: true,
		})
		return true
	})
	if innerErr != nil {
		return nil, innerErr
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Iterator returns a pull iterator over one term's postings, materialized up
// front.  It satisfies both postings.Iterator and postings.BatchIterator.
func (l *keyedList) Iterator(term string) (*postings.SliceIterator, error) {
	entries, err := l.Collect(term)
	if err != nil {
		return nil, err
	}
	return postings.NewSliceIterator(entries), nil
}

// treeCursor is a streaming pull iterator over a keyedList term, used for
// the Score method's long lists where materializing the whole list would
// defeat early termination.  It pulls postings in batches through bounded
// range scans so that an early-terminating query touches only a prefix of
// the B+-tree leaves.
type treeCursor struct {
	list      *keyedList
	term      string
	fromShort bool

	batch   []postings.Entry
	pos     int
	nextKey []byte // resume position (exclusive)
	done    bool
}

// cursorBatchSize is the number of postings fetched per refill; roughly one
// leaf page worth and one downstream batch.
const cursorBatchSize = postings.BatchSize

func (l *keyedList) Cursor(term string, fromShort bool) *treeCursor {
	return &treeCursor{list: l, term: term, fromShort: fromShort, nextKey: keyedListPrefix(term)}
}

func (c *treeCursor) refill() error {
	c.batch = c.batch[:0]
	c.pos = 0
	if c.done {
		return nil
	}
	prefix := keyedListPrefix(c.term)
	end := prefixEnd(prefix)
	var innerErr error
	var lastKey []byte
	count := 0
	stopped := false
	err := c.list.tree.AscendRange(c.nextKey, end, func(k, v []byte) bool {
		if count >= cursorBatchSize {
			// Remember where to resume: the current key (it has not been
			// consumed into the batch).
			c.nextKey = append(c.nextKey[:0], k...)
			stopped = true
			return false
		}
		_, sortKey, doc, err := decodeKeyedListKey(k)
		if err != nil {
			innerErr = err
			return false
		}
		op, ts, err := decodeKeyedListValue(v)
		if err != nil {
			innerErr = err
			return false
		}
		c.batch = append(c.batch, postings.Entry{
			Doc:       doc,
			SortKey:   sortKey,
			CID:       int32(sortKey),
			TermScore: ts,
			Op:        op,
			FromShort: c.fromShort,
		})
		lastKey = append(lastKey[:0], k...)
		count++
		return true
	})
	if innerErr != nil {
		return innerErr
	}
	if err != nil {
		return err
	}
	if !stopped {
		if count < cursorBatchSize {
			c.done = true
		} else {
			// The scan ended exactly at a full batch, so there was no extra
			// key to stash as the resume point.  Resume just past the last
			// consumed key; if nothing follows, the next refill comes back
			// empty and finishes the cursor.
			c.nextKey = append(append(c.nextKey[:0], lastKey...), 0)
		}
	}
	return nil
}

// Next implements postings.Iterator.
func (c *treeCursor) Next() (postings.Entry, bool, error) {
	for c.pos >= len(c.batch) {
		if c.done {
			return postings.Entry{}, false, nil
		}
		if err := c.refill(); err != nil {
			return postings.Entry{}, false, err
		}
		if len(c.batch) == 0 && c.done {
			return postings.Entry{}, false, nil
		}
	}
	e := c.batch[c.pos]
	c.pos++
	return e, true, nil
}

// NextBatch implements postings.BatchIterator: postings are bulk-copied out
// of the cursor's range-scan batch, one B+-tree leaf run at a time.
func (c *treeCursor) NextBatch(out []postings.Entry) (int, error) {
	n := 0
	for n < len(out) {
		if c.pos >= len(c.batch) {
			if c.done {
				break
			}
			if err := c.refill(); err != nil {
				return n, err
			}
			if len(c.batch) == 0 {
				continue
			}
		}
		copied := copy(out[n:], c.batch[c.pos:])
		n += copied
		c.pos += copied
	}
	return n, nil
}

// prefixEnd mirrors btree.prefixEnd for range termination.
func prefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}

// SizeBytes estimates the serialized size of the list: key plus value bytes
// for every posting.  It is used for the Score method's Table 1 entry.
func (l *keyedList) SizeBytes() (uint64, error) {
	var total uint64
	err := l.tree.Ascend(func(k, v []byte) bool {
		total += uint64(len(k) + len(v))
		return true
	})
	return total, err
}

func (l *keyedList) String() string {
	return fmt.Sprintf("keyedList(%d postings)", l.entries)
}
