package index

import (
	"fmt"

	"svrdb/internal/codec"
	"svrdb/internal/storage/btree"
	"svrdb/internal/storage/buffer"
)

// scoreTable is the paper's Score table: the single, collection-wide table
// mapping document IDs to their latest SVR score, indexed by ID so that
// score lookups during query processing are cheap (§4.2.1).  A deleted flag
// supports document deletion as described in Appendix A.2.
type scoreTable struct {
	tree    *btree.Tree
	lookups uint64
}

func newScoreTable(pool *buffer.Pool) (*scoreTable, error) {
	tree, err := btree.New(pool)
	if err != nil {
		return nil, err
	}
	return &scoreTable{tree: tree}, nil
}

func scoreTableKey(doc DocID) []byte {
	return codec.PutOrderedUint64(nil, uint64(doc))
}

func encodeScoreEntry(score float64, deleted bool) []byte {
	out := codec.PutFloat64(nil, score)
	if deleted {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return out
}

func decodeScoreEntry(data []byte) (score float64, deleted bool, err error) {
	s, n, err := codec.Float64(data)
	if err != nil {
		return 0, false, err
	}
	if n >= len(data) {
		return 0, false, fmt.Errorf("index: score entry missing deleted flag")
	}
	return s, data[n] == 1, nil
}

// Set stores the score of a document, clearing its deleted flag.
func (s *scoreTable) Set(doc DocID, score float64) error {
	return s.tree.Put(scoreTableKey(doc), encodeScoreEntry(score, false))
}

// Get returns the current score of a document.
func (s *scoreTable) Get(doc DocID) (score float64, deleted bool, ok bool, err error) {
	s.lookups++
	data, found, err := s.tree.Get(scoreTableKey(doc))
	if err != nil || !found {
		return 0, false, false, err
	}
	score, deleted, err = decodeScoreEntry(data)
	if err != nil {
		return 0, false, false, err
	}
	return score, deleted, true, nil
}

// MarkDeleted flags a document as deleted without discarding its score.
func (s *scoreTable) MarkDeleted(doc DocID) error {
	score, _, ok, err := s.Get(doc)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownDocument, doc)
	}
	return s.tree.Put(scoreTableKey(doc), encodeScoreEntry(score, true))
}

// Lookups reports how many Get calls have been served (a proxy for random
// probes in benchmarks).
func (s *scoreTable) Lookups() uint64 { return s.lookups }

// Len reports the number of entries (including deleted markers).
func (s *scoreTable) Len() int { return s.tree.Len() }

// ForEach visits every (doc, score, deleted) triple in document order.
func (s *scoreTable) ForEach(visit func(doc DocID, score float64, deleted bool) bool) error {
	var innerErr error
	err := s.tree.Ascend(func(k, v []byte) bool {
		id, _, err := codec.OrderedUint64(k)
		if err != nil {
			innerErr = err
			return false
		}
		score, deleted, err := decodeScoreEntry(v)
		if err != nil {
			innerErr = err
			return false
		}
		return visit(DocID(id), score, deleted)
	})
	if innerErr != nil {
		return innerErr
	}
	return err
}
