package index

import (
	"fmt"
	"sync/atomic"

	"svrdb/internal/codec"
	"svrdb/internal/storage/btree"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
)

// scoreTable is the paper's Score table: the single, collection-wide table
// mapping document IDs to their latest SVR score, indexed by ID so that
// score lookups during query processing are cheap (§4.2.1).  A deleted flag
// supports document deletion as described in Appendix A.2.
//
// Every row is fixed-width (8-byte key, 9-byte value), so Set, MarkDeleted
// and the staged flush all qualify for the B+-tree's in-place leaf patch
// fast path: an existing document's score update overwrites 9 bytes in the
// pinned leaf page instead of reserializing the whole leaf.  This is the
// heart of Algorithm 1's hot loop for every method.
//
// During a write batch (Method.ApplyUpdates) the table runs in staged mode:
// writes land in an in-memory overlay that reads consult first, and
// flushBatch applies the overlay to the B+-tree as one sorted UpsertBatch,
// so a batch touching a leaf many times rewrites it once.
type scoreTable struct {
	tree *btree.Tree
	// lookups is atomic: concurrent queries (plain Gets and per-query
	// probes) all count through it without any lock.
	lookups atomic.Uint64
	// retire receives superseded pages once COW snapshots are enabled.
	retire func(pagefile.PageID)

	staged  bool
	pending map[DocID]scoreVal
}

// scoreVal is the decoded value of one Score-table row.
type scoreVal struct {
	score   float64
	deleted bool
}

func newScoreTable(pool *buffer.Pool) (*scoreTable, error) {
	tree, err := btree.New(pool)
	if err != nil {
		return nil, err
	}
	return &scoreTable{tree: tree}, nil
}

// enableCOW switches the table's tree to copy-on-write publication.
func (s *scoreTable) enableCOW(retire func(pagefile.PageID)) {
	s.retire = retire
	s.tree.EnableCOW(retire)
}

// snapshotView seals the tree and captures a frozen scoreView for
// publication.
func (s *scoreTable) snapshotView() scoreView {
	s.tree.Seal()
	return scoreView{s: s, view: s.tree.View(), patches: s.tree.Patches(), len: s.tree.Len()}
}

// scoreView is a frozen, read-only image of the Score table.  It keeps the
// owning table only for the shared lookup counter; all data reads go
// through the captured tree view.
type scoreView struct {
	s       *scoreTable
	view    btree.View
	patches uint64
	len     int
}

// Get resolves a document's score in the view.
func (v scoreView) Get(doc DocID) (score float64, deleted bool, ok bool, err error) {
	v.s.lookups.Add(1)
	data, found, err := v.view.Get(scoreTableKey(doc))
	if err != nil || !found {
		return 0, false, false, err
	}
	score, deleted, err = decodeScoreEntry(data)
	if err != nil {
		return 0, false, false, err
	}
	return score, deleted, true, nil
}

// newProbe returns a per-query locality-aware reader pinned to the view.
func (v scoreView) newProbe() *scoreProbe {
	return &scoreProbe{s: v.s, p: v.view.NewProbe()}
}

// Len reports the entry count at capture time.
func (v scoreView) Len() int { return v.len }

// Patches reports the in-place patch count at capture time.
func (v scoreView) Patches() uint64 { return v.patches }

func scoreTableKey(doc DocID) []byte {
	return codec.PutOrderedUint64(nil, uint64(doc))
}

func encodeScoreEntry(score float64, deleted bool) []byte {
	out := codec.PutFloat64(nil, score)
	if deleted {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return out
}

func decodeScoreEntry(data []byte) (score float64, deleted bool, err error) {
	s, n, err := codec.Float64(data)
	if err != nil {
		return 0, false, err
	}
	if n >= len(data) {
		return 0, false, fmt.Errorf("index: score entry missing deleted flag")
	}
	return s, data[n] == 1, nil
}

// Set stores the score of a document, clearing its deleted flag.
func (s *scoreTable) Set(doc DocID, score float64) error {
	return s.put(doc, score, false)
}

func (s *scoreTable) put(doc DocID, score float64, deleted bool) error {
	if s.staged {
		s.pending[doc] = scoreVal{score: score, deleted: deleted}
		return nil
	}
	return s.tree.Put(scoreTableKey(doc), encodeScoreEntry(score, deleted))
}

// Get returns the current score of a document.
func (s *scoreTable) Get(doc DocID) (score float64, deleted bool, ok bool, err error) {
	s.lookups.Add(1)
	if s.staged {
		if v, hit := s.pending[doc]; hit {
			return v.score, v.deleted, true, nil
		}
	}
	data, found, err := s.tree.Get(scoreTableKey(doc))
	if err != nil || !found {
		return 0, false, false, err
	}
	score, deleted, err = decodeScoreEntry(data)
	if err != nil {
		return 0, false, false, err
	}
	return score, deleted, true, nil
}

// scoreProbe is a per-query Score-table reader that exploits the ascending
// document order of candidate resolution: consecutive lookups reuse the
// B+-tree leaf of the previous one instead of re-descending and re-scanning
// it.  Create one per query; it must not outlive an index write.
type scoreProbe struct {
	s *scoreTable
	p *btree.Probe
}

func (s *scoreTable) newProbe() *scoreProbe {
	return &scoreProbe{s: s, p: s.tree.NewProbe()}
}

// Get mirrors scoreTable.Get through the probe.
func (sp *scoreProbe) Get(doc DocID) (score float64, deleted bool, ok bool, err error) {
	sp.s.lookups.Add(1)
	data, found, err := sp.p.Get(scoreTableKey(doc))
	if err != nil || !found {
		return 0, false, false, err
	}
	score, deleted, err = decodeScoreEntry(data)
	if err != nil {
		return 0, false, false, err
	}
	return score, deleted, true, nil
}

// MarkDeleted flags a document as deleted without discarding its score.
func (s *scoreTable) MarkDeleted(doc DocID) error {
	score, _, ok, err := s.Get(doc)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownDocument, doc)
	}
	return s.put(doc, score, true)
}

// beginBatch enters staged mode: subsequent writes collect in the overlay.
func (s *scoreTable) beginBatch() {
	s.staged = true
	if s.pending == nil {
		s.pending = map[DocID]scoreVal{}
	}
}

// flushBatch applies the overlay to the tree as one grouped UpsertBatch
// (which sorts the keys itself) and leaves staged mode.
func (s *scoreTable) flushBatch() error {
	s.staged = false
	if len(s.pending) == 0 {
		return nil
	}
	items := make([]btree.Item, 0, len(s.pending))
	for doc, v := range s.pending {
		items = append(items, btree.Item{Key: scoreTableKey(doc), Value: encodeScoreEntry(v.score, v.deleted)})
	}
	clear(s.pending)
	_, err := s.tree.UpsertBatch(items)
	return err
}

// scoreTableBulkFill is the node fill target for bulk-loading the Score
// table.  Unlike the read-mostly long lists, the Score table absorbs one
// in-place leaf rewrite per score update, and a leaf rewrite costs
// proportionally to leaf size — so the update-hot table is loaded at
// roughly the occupancy ascending inserts would have produced rather than
// packed dense.
const scoreTableBulkFill = 0.55

// bulkLoad replaces the (empty) tree with one bulk-built from items, which
// must be in ascending document order.  Build paths use it so populating
// the Score table costs one left-to-right leaf-packing pass instead of one
// descent per document.
func (s *scoreTable) bulkLoad(pool *buffer.Pool, items []btree.Item) error {
	tree, err := btree.BulkLoadFill(pool, items, scoreTableBulkFill)
	if err != nil {
		return err
	}
	old := s.tree
	s.tree = tree
	if s.retire != nil {
		tree.EnableCOW(s.retire)
		return old.RetireAll()
	}
	return nil
}

// Lookups reports how many Get calls have been served (a proxy for random
// probes in benchmarks).
func (s *scoreTable) Lookups() uint64 { return s.lookups.Load() }

// Patches reports how many writes the table's tree absorbed in place.
func (s *scoreTable) Patches() uint64 { return s.tree.Patches() }

// Len reports the number of entries (including deleted markers).
func (s *scoreTable) Len() int { return s.tree.Len() }

// ForEach visits every (doc, score, deleted) triple in document order.
func (s *scoreTable) ForEach(visit func(doc DocID, score float64, deleted bool) bool) error {
	var innerErr error
	err := s.tree.Ascend(func(k, v []byte) bool {
		id, _, err := codec.OrderedUint64(k)
		if err != nil {
			innerErr = err
			return false
		}
		score, deleted, err := decodeScoreEntry(v)
		if err != nil {
			innerErr = err
			return false
		}
		return visit(DocID(id), score, deleted)
	})
	if innerErr != nil {
		return innerErr
	}
	return err
}
