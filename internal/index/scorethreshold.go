package index

import (
	"fmt"

	"svrdb/internal/postings"
	"svrdb/internal/storage/blob"
	"svrdb/internal/text"
)

// ScoreThresholdMethod implements the Score-Threshold method of §4.3.1.
//
// Each term has a long inverted list frozen at build time in descending
// (stale) score order, with the score stored in every posting, and a short
// inverted list holding fresh postings for documents whose score rose past
// thresholdValueOf(listScore) = thresholdRatio · listScore.  The ListScore
// table remembers, for every document whose score has ever been updated, its
// current list score and whether it has short-list postings.  Updates are
// processed with Algorithm 1, queries with Algorithm 2; the query keeps
// scanning past the first k results until the threshold bound guarantees no
// unseen document can beat them, which is what makes the answer exact under
// the latest scores (Theorem 1/2).
type ScoreThresholdMethod struct {
	*base
	short     *keyedList
	listScore *listTable
	// knownTokens caches terms of incrementally inserted documents.
	knownTokens map[DocID][]string
	// scoreDir is the score directory of the compressed long lists: the
	// distinct build-time scores in descending order, shared by every list
	// so each posting stores a small rank delta instead of a raw float64.
	// Nil when the lists were built uncompressed.
	scoreDir []float64
}

// NewScoreThreshold creates a Score-Threshold index with the configured
// threshold ratio.
func NewScoreThreshold(cfg Config) (*ScoreThresholdMethod, error) {
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	short, err := newKeyedList(b.cfg.Pool)
	if err != nil {
		return nil, err
	}
	ls, err := newListTable(b.cfg.Pool)
	if err != nil {
		return nil, err
	}
	m := &ScoreThresholdMethod{base: b, short: short, listScore: ls, knownTokens: map[DocID][]string{}}
	m.initSnapshots()
	return m, nil
}

// initSnapshots wires the short lists and the ListScore table into the
// epoch machinery and publishes the initial snapshot; also used after
// Restore and after a merge replaces the structures.
func (m *ScoreThresholdMethod) initSnapshots() {
	m.short.enableCOW(m.retirePage)
	m.listScore.enableCOW(m.retirePage)
	m.fillExtra = func(s *snap) {
		s.lists = m.short.snapshotView()
		s.table = m.listScore.snapshotView()
		s.scoreDir = m.scoreDir
	}
	m.publish()
}

// Name implements Method.
func (m *ScoreThresholdMethod) Name() string { return "Score-Threshold" }

// ThresholdRatio returns the configured ratio t.
func (m *ScoreThresholdMethod) ThresholdRatio() float64 { return m.cfg.ThresholdRatio }

// thresholdValueOf is the paper's thresholdValueOf(score) = t·score with
// t ≥ 1; a document's short-list postings are rewritten only when its score
// exceeds this value.
func (m *ScoreThresholdMethod) thresholdValueOf(score float64) float64 {
	return m.cfg.ThresholdRatio * score
}

// Build implements Method.
func (m *ScoreThresholdMethod) Build(src DocSource, scores ScoreFunc) error {
	defer m.publish()
	m.src = src
	bc, err := accumulate(src, scores, m.dict)
	if err != nil {
		return err
	}
	if err := m.populateScoreTable(bc); err != nil {
		return err
	}
	if !m.cfg.Uncompressed {
		m.scoreDir = postings.BuildScoreDir(bc.allScores())
	}
	// Published snapshots share the ref map by pointer, so accumulate into a
	// fresh map and swap it in wholesale.
	refs := make(map[string]blob.Ref, len(bc.termDocs))
	for _, term := range bc.terms() {
		builder := postings.NewScoreEncoder(!m.cfg.Uncompressed, m.scoreDir)
		for _, dw := range bc.sortedByScoreDesc(term) {
			if err := builder.Add(dw.doc, bc.docScores[dw.doc]); err != nil {
				return fmt.Errorf("index: build Score-Threshold list for %q: %w", term, err)
			}
		}
		data := builder.Bytes()
		ref, err := m.store.Put(data)
		if err != nil {
			return err
		}
		refs[term] = ref
		m.longBytes += uint64(len(data))
		m.longRawBytes += uint64(builder.Len()) * rawBytesScorePosting
	}
	m.longRefs = refs
	return nil
}

// ApplyUpdates implements Method: Algorithm 1 replays per update against
// the staged Score and ListScore tables, and the short-list postings of the
// whole batch are written grouped by term.
func (m *ScoreThresholdMethod) ApplyUpdates(batch []Update) error {
	return m.runBatch(m, batch, m.score, m.short, m.listScore)
}

// UpdateScore implements Method (Algorithm 1).
func (m *ScoreThresholdMethod) UpdateScore(doc DocID, newScore float64) error {
	defer m.publish()
	m.counters.scoreUpdates.Add(1)
	oldScore, deleted, ok, err := m.score.Get(doc)
	if err != nil {
		return err
	}
	if !ok || deleted {
		return fmt.Errorf("%w: %d", ErrUnknownDocument, doc)
	}
	if err := m.score.Set(doc, newScore); err != nil {
		return err
	}

	entry, exists, err := m.listScore.Get(doc)
	if err != nil {
		return err
	}
	var lScore float64
	var inShort bool
	if exists {
		lScore, inShort = entry.Key, entry.InShortList
	} else {
		lScore = oldScore
		if err := m.listScore.Put(doc, listEntry{Key: oldScore, InShortList: false}); err != nil {
			return err
		}
	}

	if newScore <= m.thresholdValueOf(lScore) {
		return nil
	}
	tokens, err := m.docTokens(doc)
	if err != nil {
		return fmt.Errorf("index: Score-Threshold update for %d needs document content: %w", doc, err)
	}
	for _, tw := range docTermWeights(tokens) {
		if inShort {
			if err := m.short.Delete(tw.term, lScore, doc); err != nil {
				return err
			}
		}
		if err := m.short.Put(tw.term, newScore, doc, postings.OpAdd, tw.w); err != nil {
			return err
		}
		m.counters.shortListPostingsWritten.Add(1)
	}
	return m.listScore.Put(doc, listEntry{Key: newScore, InShortList: true})
}

// InsertDocument implements Method (Appendix A.2): the new document's
// postings go straight to the short lists.
func (m *ScoreThresholdMethod) InsertDocument(doc DocID, tokens []string, score float64) error {
	defer m.publish()
	if err := m.score.Set(doc, score); err != nil {
		return err
	}
	weights := docTermWeights(tokens)
	distinct := make([]string, 0, len(weights))
	for _, tw := range weights {
		if err := m.short.Put(tw.term, score, doc, postings.OpAdd, tw.w); err != nil {
			return err
		}
		m.counters.shortListPostingsWritten.Add(1)
		distinct = append(distinct, tw.term)
	}
	m.dict.AddDocumentTerms(distinct)
	m.knownTokens[doc] = distinct
	m.numDocs.Add(1)
	return m.listScore.Put(doc, listEntry{Key: score, InShortList: true})
}

// DeleteDocument implements Method (Appendix A.2).
func (m *ScoreThresholdMethod) DeleteDocument(doc DocID) error {
	defer m.publish()
	score, _, ok, err := m.score.Get(doc)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownDocument, doc)
	}
	if err := m.score.MarkDeleted(doc); err != nil {
		return err
	}
	for _, term := range m.docTermsForMaintenance(doc) {
		if err := m.short.DeleteAllForDoc(term, doc); err != nil {
			return err
		}
	}
	// Leave a ListScore entry pointing at the long-list copy so that the
	// query path probes the Score table (and sees the deleted flag) instead
	// of trusting the stale long-list score.
	entry, exists, err := m.listScore.Get(doc)
	if err != nil {
		return err
	}
	key := score
	if exists {
		key = entry.Key
	}
	if err := m.listScore.Put(doc, listEntry{Key: key, InShortList: false}); err != nil {
		return err
	}
	delete(m.knownTokens, doc)
	m.numDocs.Add(-1)
	return nil
}

// UpdateContent implements Method (Appendix A.1): added terms gain ADD
// postings and removed terms gain REM postings in the short lists, at the
// document's current list position so that they align with its other
// postings during the merge.
func (m *ScoreThresholdMethod) UpdateContent(doc DocID, oldTokens, newTokens []string) error {
	defer m.publish()
	listKey, err := m.listPosition(doc)
	if err != nil {
		return err
	}
	added, removed := diffTerms(oldTokens, newTokens)
	newWeights := text.TermFrequencies(newTokens)
	for _, term := range added {
		w := text.NormalizedTF(newWeights[term], len(newTokens))
		if err := m.short.Put(term, listKey, doc, postings.OpAdd, w); err != nil {
			return err
		}
		m.counters.shortListPostingsWritten.Add(1)
	}
	for _, term := range removed {
		if err := m.short.Put(term, listKey, doc, postings.OpRem, 0); err != nil {
			return err
		}
		m.counters.shortListPostingsWritten.Add(1)
	}
	m.dict.AddDocumentTerms(added)
	m.dict.RemoveDocumentTerms(removed)
	return nil
}

// listPosition returns the sort key under which the document's postings
// currently appear (its list score).
func (m *ScoreThresholdMethod) listPosition(doc DocID) (float64, error) {
	entry, exists, err := m.listScore.Get(doc)
	if err != nil {
		return 0, err
	}
	if exists {
		return entry.Key, nil
	}
	score, _, ok, err := m.score.Get(doc)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownDocument, doc)
	}
	return score, nil
}

func (m *ScoreThresholdMethod) docTokens(doc DocID) ([]string, error) {
	if m.src != nil {
		if tokens, err := m.src.Tokens(doc); err == nil {
			return tokens, nil
		} else if cached, ok := m.knownTokens[doc]; ok {
			return cached, nil
		} else {
			return nil, err
		}
	}
	if cached, ok := m.knownTokens[doc]; ok {
		return cached, nil
	}
	return nil, fmt.Errorf("%w: %d has no available content", ErrUnknownDocument, doc)
}

func (m *ScoreThresholdMethod) docTermsForMaintenance(doc DocID) []string {
	if tokens, err := m.docTokens(doc); err == nil {
		return distinctTerms(tokens)
	}
	return nil
}

// TopK implements Method (Algorithm 2).
func (m *ScoreThresholdMethod) TopK(q Query) (*QueryResult, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.WithTermScores {
		return nil, ErrTermScoresUnsupported
	}
	s, guard, err := m.acquire()
	if err != nil {
		return nil, err
	}
	defer guard.Leave()
	ctx := newQueryCtx()
	defer ctx.release()
	for _, term := range q.Terms {
		long, err := m.longIterator(s, term)
		if err != nil {
			return nil, err
		}
		short, err := s.lists.Iterator(term)
		if err != nil {
			return nil, err
		}
		ctx.streams = append(ctx.streams, combinedStream(short, long))
	}
	return m.runRanked(rankedQuery{
		streams:     ctx.streams,
		k:           q.K,
		conjunctive: !q.Disjunctive,
		maxPossible: m.thresholdValueOf,
		resolve:     m.resolveCandidate(s),
	})
}

// resolveCandidate implements lines 12-21 of Algorithm 2 against one
// snapshot: decide which copy of the document is authoritative and fetch
// its latest score.  Candidates arrive in list order, not document order,
// so plain snapshot lookups (full descents) beat leaf-caching probes here.
func (m *ScoreThresholdMethod) resolveCandidate(s *snap) func(g postings.Group) (float64, bool, error) {
	return func(g postings.Group) (float64, bool, error) {
		entry, exists, err := s.table.Get(g.Doc)
		if err != nil {
			return 0, false, err
		}
		if exists && entry.InShortList {
			// The short-list copy (at sort key entry.Key) is authoritative; any
			// other appearance is the stale long-list copy and is skipped.
			if g.SortKey != entry.Key {
				return 0, false, nil
			}
			return s.currentScore(g.Doc)
		}
		if !exists {
			// Never updated: the long-list score is the latest score.
			return g.SortKey, true, nil
		}
		// Updated but within the threshold: the long-list copy is authoritative
		// but its stored score is stale, so probe the Score table.
		return s.currentScore(g.Doc)
	}
}

func (m *ScoreThresholdMethod) longIterator(s *snap, term string) (postings.BatchIterator, error) {
	ref, ok := s.longRefs[term]
	if !ok {
		return postings.NewSliceIterator(nil), nil
	}
	return postings.NewStreamScoreListDir(m.store.NewReader(ref), s.scoreDir)
}

// Stats implements Method.
func (m *ScoreThresholdMethod) Stats() Stats {
	sn, guard, err := m.acquire()
	if err != nil {
		return Stats{Method: m.Name()}
	}
	defer guard.Leave()
	s := Stats{
		Method:           m.Name(),
		LongListBytes:    sn.longBytes,
		LongListRawBytes: sn.longRawBytes,
		ShortListEntries: sn.lists.Len(),
		TablePatches:     sn.score.Patches() + sn.table.Patches() + sn.lists.Patches(),
	}
	m.counters.fill(&s)
	m.fillPoolStats(&s)
	m.fillEpochStats(&s)
	return s
}
