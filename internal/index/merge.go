package index

import (
	"fmt"
	"sort"

	"svrdb/internal/storage/blob"
	"svrdb/internal/text"
)

// This file implements the offline merge the paper assumes happens
// periodically: "the short lists will be periodically merged with the long
// lists bringing down document insertion cost again" (§A.3), and §5.1 notes
// the merge runs offline and is excluded from the measured update costs.
//
// MergeShortLists rebuilds the long inverted lists from the current state of
// the collection — the latest scores in the Score table and the latest
// document contents — and empties the short lists and the ListScore/ListChunk
// table, returning the index to its freshly-bulk-loaded shape.  The merge
// runs under the serialized writer with publication suppressed, so readers
// stay on the pre-merge snapshot throughout and flip to the merged index
// atomically at the end; the superseded generation — the old list trees and
// the old long-list blobs — is retired to the epoch manager and its pages are
// recycled once the last pre-merge reader leaves.

// snapshotSource materializes the live collection for a rebuild: every
// non-deleted document in the Score table, with its current tokens and
// current score.  It implements DocSource.
type snapshotSource struct {
	docs   []DocID
	tokens map[DocID][]string
	scores map[DocID]float64
}

func (s *snapshotSource) NumDocs() int { return len(s.docs) }

func (s *snapshotSource) ForEach(fn func(doc DocID, tokens []string) error) error {
	for _, doc := range s.docs {
		if err := fn(doc, s.tokens[doc]); err != nil {
			return err
		}
	}
	return nil
}

func (s *snapshotSource) Tokens(doc DocID) ([]string, error) {
	tokens, ok := s.tokens[doc]
	if !ok {
		return nil, fmt.Errorf("%w: %d not in snapshot", ErrUnknownDocument, doc)
	}
	return tokens, nil
}

func (s *snapshotSource) scoreFunc() ScoreFunc {
	return func(doc DocID) float64 { return s.scores[doc] }
}

// snapshot collects the live collection using the supplied content accessor.
func (b *base) snapshot(tokensOf func(DocID) ([]string, error)) (*snapshotSource, error) {
	snap := &snapshotSource{tokens: map[DocID][]string{}, scores: map[DocID]float64{}}
	var iterErr error
	err := b.score.ForEach(func(doc DocID, score float64, deleted bool) bool {
		if deleted {
			return true
		}
		tokens, err := tokensOf(doc)
		if err != nil {
			iterErr = fmt.Errorf("index: merge cannot read content of document %d: %w", doc, err)
			return false
		}
		snap.docs = append(snap.docs, doc)
		snap.tokens[doc] = tokens
		snap.scores[doc] = score
		return true
	})
	if iterErr != nil {
		return nil, iterErr
	}
	if err != nil {
		return nil, err
	}
	sort.Slice(snap.docs, func(i, j int) bool { return snap.docs[i] < snap.docs[j] })
	return snap, nil
}

// MergeShortLists rebuilds the ID / ID-TermScore long lists, absorbing
// postings of incrementally inserted documents and content updates, and
// empties the auxiliary list.
func (m *IDMethod) MergeShortLists() error {
	snap, err := m.snapshot(func(doc DocID) ([]string, error) {
		if m.src != nil {
			if tokens, err := m.src.Tokens(doc); err == nil {
				return tokens, nil
			}
		}
		if cached, ok := m.knownTokens[doc]; ok {
			return cached, nil
		}
		return nil, fmt.Errorf("%w: %d has no available content", ErrUnknownDocument, doc)
	})
	if err != nil {
		return err
	}
	aux, err := newKeyedList(m.cfg.Pool)
	if err != nil {
		return err
	}
	aux.enableCOW(m.retirePage)
	origSrc := m.src
	oldAux, oldRefs := m.aux, m.longRefs
	m.suppress = true
	defer func() {
		m.src = origSrc
		m.suppress = false
		m.publish()
	}()
	m.longRefs = map[string]blob.Ref{}
	m.longBytes = 0
	m.longRawBytes = 0
	m.dict = text.NewDictionary()
	m.aux = aux
	if err := m.Build(snap, snap.scoreFunc()); err != nil {
		return err
	}
	if err := oldAux.tree.RetireAll(); err != nil {
		return err
	}
	m.retireBlobRefs(oldRefs)
	return nil
}

// MergeShortLists is a no-op for the Score method: its lists are always
// maintained in place and there is nothing to merge.
func (m *ScoreMethod) MergeShortLists() error { return nil }

// MergeShortLists rebuilds the Score-Threshold long lists in current-score
// order and empties the short lists and the ListScore table.
func (m *ScoreThresholdMethod) MergeShortLists() error {
	snap, err := m.snapshot(m.docTokens)
	if err != nil {
		return err
	}
	short, err := newKeyedList(m.cfg.Pool)
	if err != nil {
		return err
	}
	ls, err := newListTable(m.cfg.Pool)
	if err != nil {
		return err
	}
	short.enableCOW(m.retirePage)
	ls.enableCOW(m.retirePage)
	origSrc := m.src
	oldShort, oldListScore, oldRefs := m.short, m.listScore, m.longRefs
	m.suppress = true
	defer func() {
		m.src = origSrc
		m.suppress = false
		m.publish()
	}()
	m.longRefs = map[string]blob.Ref{}
	m.longBytes = 0
	m.longRawBytes = 0
	m.dict = text.NewDictionary()
	m.short = short
	m.listScore = ls
	if err := m.Build(snap, snap.scoreFunc()); err != nil {
		return err
	}
	if err := oldShort.tree.RetireAll(); err != nil {
		return err
	}
	if err := oldListScore.tree.RetireAll(); err != nil {
		return err
	}
	m.retireBlobRefs(oldRefs)
	return nil
}

// MergeShortLists rebuilds the Chunk long lists with chunk boundaries derived
// from the current score distribution and empties the short lists and the
// ListChunk table.
func (m *ChunkMethod) MergeShortLists() error {
	snap, err := m.snapshot(m.docTokens)
	if err != nil {
		return err
	}
	origSrc := m.src
	m.suppress = true
	defer func() {
		m.src = origSrc
		m.suppress = false
		m.publish()
	}()
	oldShort, oldListChunk, oldRefs, err := m.resetChunkState()
	if err != nil {
		return err
	}
	if err := m.Build(snap, snap.scoreFunc()); err != nil {
		return err
	}
	return m.retireChunkState(oldShort, oldListChunk, oldRefs)
}

// resetChunkState swaps in fresh, COW-enabled short-list and ListChunk
// structures and an empty long-list generation, returning the superseded ones
// for retirement after the merged snapshot is published.
func (m *ChunkMethod) resetChunkState() (oldShort *keyedList, oldListChunk *listTable, oldRefs map[string]blob.Ref, err error) {
	short, err := newKeyedList(m.cfg.Pool)
	if err != nil {
		return nil, nil, nil, err
	}
	lc, err := newListTable(m.cfg.Pool)
	if err != nil {
		return nil, nil, nil, err
	}
	short.enableCOW(m.retirePage)
	lc.enableCOW(m.retirePage)
	oldShort, oldListChunk, oldRefs = m.short, m.listChunk, m.longRefs
	m.longRefs = map[string]blob.Ref{}
	m.longBytes = 0
	m.longRawBytes = 0
	m.dict = text.NewDictionary()
	m.short = short
	m.listChunk = lc
	return oldShort, oldListChunk, oldRefs, nil
}

func (m *ChunkMethod) retireChunkState(oldShort *keyedList, oldListChunk *listTable, oldRefs map[string]blob.Ref) error {
	if err := oldShort.tree.RetireAll(); err != nil {
		return err
	}
	if err := oldListChunk.tree.RetireAll(); err != nil {
		return err
	}
	m.retireBlobRefs(oldRefs)
	return nil
}

// MergeShortLists rebuilds the Chunk-TermScore long lists and fancy lists and
// empties the short lists and the ListChunk table.
func (m *ChunkTermScoreMethod) MergeShortLists() error {
	snap, err := m.snapshot(m.docTokens)
	if err != nil {
		return err
	}
	origSrc := m.src
	m.suppress = true
	defer func() {
		m.src = origSrc
		m.suppress = false
		m.publish()
	}()
	oldShort, oldListChunk, oldRefs, err := m.resetChunkState()
	if err != nil {
		return err
	}
	oldFancyRefs := m.fancyRefs
	m.fancyBytes = 0
	if err := m.Build(snap, snap.scoreFunc()); err != nil {
		return err
	}
	if err := m.retireChunkState(oldShort, oldListChunk, oldRefs); err != nil {
		return err
	}
	m.retireBlobRefs(oldFancyRefs)
	return nil
}
