package index

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// Tests for the compressed posting-block encoding at the index level: every
// method must answer every query identically whether its long lists were
// built compressed (the default) or with Config.Uncompressed, through
// updates, merges and checkpoint restores — and the compressed encoding must
// actually earn its keep (ratio gate).

// compressionCorpus generates a corpus dense enough that every term has a
// long list spanning hundreds of documents (so posting blocks fill up and
// the bitpacked gap encoding is exercised, not just block headers).
func compressionCorpus(nDocs, vocabSize, docLen int, seed int64) *testCorpus {
	rng := rand.New(rand.NewSource(seed))
	vocab := make([]string, vocabSize)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("term%02d", i)
	}
	c := newTestCorpus()
	for i := 0; i < nDocs; i++ {
		words := make([]string, 0, docLen)
		for j := 0; j < docLen; j++ {
			words = append(words, vocab[rng.Intn(len(vocab))])
		}
		c.add(DocID(i+1), float64(rng.Intn(100000))+rng.Float64(), strings.Join(words, " "))
	}
	return c
}

// requireSameResults asserts two TopK answers are identical document by
// document, score by score.
func requireSameResults(t *testing.T, label string, comp, flat *QueryResult) {
	t.Helper()
	if len(comp.Results) != len(flat.Results) {
		t.Fatalf("%s: compressed returned %d results, uncompressed %d", label, len(comp.Results), len(flat.Results))
	}
	for i := range comp.Results {
		if comp.Results[i].Doc != flat.Results[i].Doc || comp.Results[i].Score != flat.Results[i].Score {
			t.Fatalf("%s: result %d diverges: compressed {doc %d score %g}, uncompressed {doc %d score %g}",
				label, i, comp.Results[i].Doc, comp.Results[i].Score, flat.Results[i].Doc, flat.Results[i].Score)
		}
	}
}

// queryPair runs the same query against both builds and checks the answers
// match.
func queryPair(t *testing.T, label string, comp, flat Method, q Query) {
	t.Helper()
	cr, err := comp.TopK(q)
	if err != nil {
		t.Fatalf("%s: compressed TopK: %v", label, err)
	}
	fr, err := flat.TopK(q)
	if err != nil {
		t.Fatalf("%s: uncompressed TopK: %v", label, err)
	}
	requireSameResults(t, label, cr, fr)
}

func TestCompressedMatchesUncompressed(t *testing.T) {
	const nDocs = 400
	corpus := compressionCorpus(nDocs, 12, 9, 71)
	for name, ctor := range allConstructors() {
		t.Run(name, func(t *testing.T) {
			cfgComp := newTestConfig(t)
			cfgFlat := newTestConfig(t)
			cfgFlat.Uncompressed = true
			comp, err := ctor(cfgComp)
			if err != nil {
				t.Fatal(err)
			}
			flat, err := ctor(cfgFlat)
			if err != nil {
				t.Fatal(err)
			}
			if err := comp.Build(corpus, corpus.scoreFunc()); err != nil {
				t.Fatalf("compressed Build: %v", err)
			}
			if err := flat.Build(corpus, corpus.scoreFunc()); err != nil {
				t.Fatalf("uncompressed Build: %v", err)
			}

			withTS := name == "ID-TermScore" || name == "Chunk-TermScore"
			rng := rand.New(rand.NewSource(29))
			runQueries := func(stage string) {
				for q := 0; q < 12; q++ {
					n := rng.Intn(3) + 1
					terms := make([]string, 0, n)
					for j := 0; j < n; j++ {
						terms = append(terms, fmt.Sprintf("term%02d", rng.Intn(12)))
					}
					query := Query{
						Terms:          terms,
						K:              rng.Intn(20) + 1,
						Disjunctive:    rng.Intn(2) == 0,
						WithTermScores: withTS && rng.Intn(2) == 0,
					}
					queryPair(t, fmt.Sprintf("%s %s %v", name, stage, query), comp, flat, query)
				}
			}
			runQueries("after build")

			// The same update batch against both builds: score changes, an
			// insert, a delete and a content rewrite, so the combined
			// short+long streams and the stale-copy resolution both run over
			// compressed long lists.
			batch := []Update{
				{Op: InsertOp, Doc: DocID(nDocs + 1), Tokens: strings.Fields("term00 term03 term07 term03"), Score: 91000},
				{Op: DeleteOp, Doc: 17},
				{Op: ContentOp, Doc: 23, OldTokens: corpus.docs[23], NewTokens: strings.Fields("term01 term05 term05 term09")},
			}
			for u := 0; u < 120; u++ {
				batch = append(batch, Update{Op: ScoreOp, Doc: DocID(rng.Intn(nDocs) + 1), Score: float64(rng.Intn(200000))})
			}
			// Deleted docs cannot take further updates; drop collisions.
			filtered := batch[:0]
			for _, u := range batch {
				if u.Op == ScoreOp && u.Doc == 17 {
					continue
				}
				filtered = append(filtered, u)
			}
			if err := comp.ApplyUpdates(filtered); err != nil {
				t.Fatalf("compressed ApplyUpdates: %v", err)
			}
			if err := flat.ApplyUpdates(filtered); err != nil {
				t.Fatalf("uncompressed ApplyUpdates: %v", err)
			}
			corpus.docs[DocID(nDocs+1)] = strings.Fields("term00 term03 term07 term03")
			corpus.docs[23] = strings.Fields("term01 term05 term05 term09")
			runQueries("after updates")

			// The offline merge rebuilds the long lists under the same
			// encoding flag; answers must stay aligned.
			if err := comp.MergeShortLists(); err != nil {
				t.Fatalf("compressed MergeShortLists: %v", err)
			}
			if err := flat.MergeShortLists(); err != nil {
				t.Fatalf("uncompressed MergeShortLists: %v", err)
			}
			runQueries("after merge")

			// Checkpoint round-trip: the restored method reads the same
			// compressed blobs (and, for Score-Threshold, the persisted
			// score directory).
			restored, err := Restore(cfgComp, comp.State())
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			restored.SetSource(corpus)
			queryPair(t, name+" after restore", restored, flat, Query{Terms: []string{"term03", "term07"}, K: 15})
			queryPair(t, name+" after restore disj", restored, flat, Query{Terms: []string{"term01", "term09"}, K: 10, Disjunctive: true})
		})
	}
}

func TestCompressionRatioGate(t *testing.T) {
	// Long lists of several hundred postings each; the blob-backed methods
	// must compress their fixed-width footprint at least 2x.  The Score
	// method keeps postings in B+-tree leaves and is exempt.
	corpus := compressionCorpus(2000, 25, 10, 5)
	for name, ctor := range allConstructors() {
		if name == "Score" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			cfg := newTestConfig(t)
			cfg.MinChunkSize = 100
			m, err := ctor(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Build(corpus, corpus.scoreFunc()); err != nil {
				t.Fatal(err)
			}
			st := m.Stats()
			if st.LongListRawBytes == 0 || st.LongListBytes == 0 {
				t.Fatalf("stats missing byte counts: raw %d stored %d", st.LongListRawBytes, st.LongListBytes)
			}
			ratio := float64(st.LongListRawBytes) / float64(st.LongListBytes)
			t.Logf("%s: raw %d B, stored %d B, ratio %.2fx", name, st.LongListRawBytes, st.LongListBytes, ratio)
			if ratio < 2 {
				t.Errorf("%s compression ratio %.2fx < 2x (raw %d B, stored %d B)", name, ratio, st.LongListRawBytes, st.LongListBytes)
			}
		})
	}
}

func TestBlockFormatBeatsLegacyEncoding(t *testing.T) {
	// The legacy layouts already d-gap varint compress, so the block format
	// has to beat them on stored bytes, not just the fixed-width baseline —
	// and Uncompressed builds must still account their raw footprint so the
	// stats surface stays comparable across the A/B pair.
	corpus := compressionCorpus(300, 10, 8, 11)
	for name, ctor := range allConstructors() {
		if name == "Score" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			build := func(uncompressed bool) Stats {
				cfg := newTestConfig(t)
				cfg.Uncompressed = uncompressed
				m, err := ctor(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := m.Build(corpus, corpus.scoreFunc()); err != nil {
					t.Fatal(err)
				}
				return m.Stats()
			}
			comp, flat := build(false), build(true)
			if flat.LongListRawBytes == 0 {
				t.Fatal("uncompressed build reported zero raw bytes")
			}
			if flat.LongListRawBytes != comp.LongListRawBytes {
				t.Errorf("raw footprint differs across encodings: %d vs %d", flat.LongListRawBytes, comp.LongListRawBytes)
			}
			t.Logf("%s: blocks %d B, legacy %d B, raw %d B", name, comp.LongListBytes, flat.LongListBytes, comp.LongListRawBytes)
			if comp.LongListBytes >= flat.LongListBytes {
				t.Errorf("block format stores %d B, legacy stores %d B — no win", comp.LongListBytes, flat.LongListBytes)
			}
		})
	}
}
