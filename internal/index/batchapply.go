package index

import (
	"errors"
	"fmt"
)

// This file implements the shared machinery behind Method.ApplyUpdates, the
// write-side counterpart of the read path's block-at-a-time protocol.
//
// A batch runs in two phases.  First every update is replayed in order
// through the method's ordinary maintenance logic (UpdateScore,
// InsertDocument, ...), but with the method's updatable structures — the
// Score table, the ListScore/ListChunk table and the short/clustered lists —
// switched into staged mode: reads see the batch's earlier writes through an
// in-memory overlay, and writes collect instead of descending the B+-trees.
// Second, each structure flushes its overlay as sorted grouped writes
// (btree.UpsertBatch / DeleteBatch), so postings destined for the same tree
// leaf share one descent and one leaf rewrite no matter how the updates were
// interleaved.  The resulting index state is identical to applying the batch
// one call at a time.

// stager is a structure that can defer its writes for the duration of one
// batch.  beginBatch enters staged mode; flushBatch applies the collected
// writes with grouped B+-tree operations and leaves staged mode.
type stager interface {
	beginBatch()
	flushBatch() error
}

// applyOne dispatches one update to the method's maintenance entry points.
func applyOne(m Method, u Update) error {
	switch u.Op {
	case ScoreOp:
		return m.UpdateScore(u.Doc, u.Score)
	case InsertOp:
		return m.InsertDocument(u.Doc, u.Tokens, u.Score)
	case DeleteOp:
		return m.DeleteDocument(u.Doc)
	case ContentOp:
		return m.UpdateContent(u.Doc, u.OldTokens, u.NewTokens)
	default:
		return fmt.Errorf("index: unknown update kind %d", u.Op)
	}
}

// runBatch replays batch through m with the given structures staged, then
// flushes them.  A failing update does not abort the batch: later updates
// still apply, mirroring the engine's eager maintenance (which records an
// error per failing event and keeps going), and the errors are joined.
func (b *base) runBatch(m Method, batch []Update, tables ...stager) error {
	if len(batch) == 0 {
		return nil
	}
	// Suppress the per-update snapshot publications; the batch publishes
	// once after the flush, so concurrent queries see either the whole
	// batch or none of it.
	b.suppress = true
	for _, t := range tables {
		t.beginBatch()
	}
	var errs []error
	for i := range batch {
		if err := applyOne(m, batch[i]); err != nil {
			errs = append(errs, err)
		}
	}
	for _, t := range tables {
		if err := t.flushBatch(); err != nil {
			errs = append(errs, err)
		}
	}
	b.suppress = false
	b.publish()
	return errors.Join(errs...)
}
