package index

import (
	"fmt"
	"math"
	"sort"
)

// chunker assigns documents to chunks based on the score distribution at
// build time, following §4.3.2: chunk boundaries are chosen so that the
// lowest score of chunk i+1 is roughly chunkRatio times the lowest score of
// chunk i, subject to a minimum number of documents per chunk (the paper
// uses 100) so that very skewed distributions do not produce tiny chunks.
//
// Chunks are numbered 1..NumChunks from lowest to highest scores; documents
// in higher-numbered chunks have (originally) higher scores, matching the
// paper's "documents in higher chunks always have higher scores than
// documents in lower chunks".
type chunker struct {
	// lower[i] is the lower-bound score of chunk i+1 (0-based slice); lower[0]
	// is always 0 so every non-negative score lands in some chunk.
	lower []float64
}

// buildChunker derives chunk boundaries from the build-time scores.
func buildChunker(scores []float64, ratio float64, minSize int) *chunker {
	if ratio <= 1 {
		ratio = 1.0001
	}
	if minSize < 1 {
		minSize = 1
	}
	sorted := append([]float64(nil), scores...)
	sort.Float64s(sorted)

	lower := []float64{0}
	i := 0
	n := len(sorted)
	for i < n {
		// The lowest positive score in the current chunk determines the next
		// boundary; all-zero prefixes use 1 as the base so the geometric
		// progression can start.
		base := sorted[i]
		if base <= 0 {
			base = 1
		}
		nextBound := base * ratio
		j := sort.SearchFloat64s(sorted, nextBound)
		if j < i+minSize {
			j = i + minSize
		}
		if j >= n {
			break
		}
		bound := sorted[j]
		if bound <= lower[len(lower)-1] {
			// Duplicate scores straddling the boundary: push the boundary to
			// the next strictly larger score.
			for j < n && sorted[j] <= lower[len(lower)-1] {
				j++
			}
			if j >= n {
				break
			}
			bound = sorted[j]
		}
		lower = append(lower, bound)
		i = j
	}
	return &chunker{lower: lower}
}

// uniformChunker builds numChunks equal-width chunks over [0, maxScore]; it
// exists for the chunk-boundary-policy ablation.
func uniformChunker(maxScore float64, numChunks int) *chunker {
	if numChunks < 1 {
		numChunks = 1
	}
	if maxScore <= 0 {
		maxScore = 1
	}
	lower := make([]float64, numChunks)
	for i := 1; i < numChunks; i++ {
		lower[i] = maxScore * float64(i) / float64(numChunks)
	}
	return &chunker{lower: lower}
}

// NumChunks reports the number of chunks.
func (c *chunker) NumChunks() int { return len(c.lower) }

// ChunkOf returns the chunk ID (1-based) that holds the given score.
// Negative scores map to chunk 1.
func (c *chunker) ChunkOf(score float64) int32 {
	// Find the last boundary <= score.
	lo, hi := 0, len(c.lower)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.lower[mid] <= score {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < 1 {
		lo = 1
	}
	return int32(lo)
}

// LowerBound returns the smallest score that belongs to the given chunk.
func (c *chunker) LowerBound(cid int32) float64 {
	if cid < 1 {
		cid = 1
	}
	if int(cid) > len(c.lower) {
		return math.Inf(1)
	}
	return c.lower[cid-1]
}

// UpperBound returns the exclusive upper score bound of the given chunk (the
// lower bound of the next chunk), or +Inf for the topmost chunk and above.
func (c *chunker) UpperBound(cid int32) float64 {
	if cid < 1 {
		return c.lower[0]
	}
	if int(cid) >= len(c.lower) {
		return math.Inf(1)
	}
	return c.lower[cid]
}

// thresholdChunk is the Chunk-method threshold function of §4.3.2:
// thresholdValueOf(c) = c + 1, meaning a document's short-list postings are
// rewritten only when its score climbs at least two chunks above its list
// chunk.
func thresholdChunk(cid int32) int32 { return cid + 1 }

func (c *chunker) String() string {
	return fmt.Sprintf("chunker(%d chunks)", len(c.lower))
}
