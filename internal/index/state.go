package index

import (
	"fmt"

	"svrdb/internal/storage/blob"
	"svrdb/internal/storage/btree"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/epoch"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/text"
)

// TreeRef anchors one B+-tree for a checkpoint: its root page and key
// count.  Entries additionally carries a keyedList's posting count (which
// the list tracks separately from the tree's key count).
type TreeRef struct {
	Root    pagefile.PageID
	Size    int
	Entries int
}

func treeRefOf(t *btree.Tree) TreeRef {
	return TreeRef{Root: t.RootPage(), Size: t.Len()}
}

// MethodState is the serializable navigational state of one index method:
// everything Restore needs to reattach to the trees and blobs a checkpoint
// left in the page file.  Kind selects which of the optional structure
// anchors are meaningful; unused ones stay zero.
type MethodState struct {
	// Kind is the Method.Name() of the snapshotted index.
	Kind string

	NumDocs   int64
	LongBytes uint64
	// LongRawBytes is the fixed-width footprint of the long-list postings
	// (the raw side of the compression ratio reported by Stats).
	LongRawBytes uint64
	// LongRefs maps each term to its immutable long inverted list blob.
	LongRefs map[string]blob.Ref
	Dict     text.DictionaryState
	// Score anchors the Score table's tree.
	Score TreeRef

	// Lists anchors the ID family's auxiliary list, the Score method's
	// clustered lists, and the threshold/chunk families' short lists — each
	// method has exactly one mutable keyed list.
	Lists TreeRef
	// ListTable anchors the ListScore/ListChunk table (threshold and chunk
	// families only).
	ListTable TreeRef
	// KnownTokens carries the distinct-term cache for incrementally inserted
	// documents (every family except the Score method keeps one).
	KnownTokens map[DocID][]string

	// ChunkLower is the chunker's boundary vector (chunk families only).
	ChunkLower []float64

	// ScoreDir is the Score-Threshold method's score directory: the distinct
	// build-time scores in descending order that its compressed long lists
	// encode ranks against.  Nil for other methods or uncompressed builds.
	ScoreDir []float64

	// Fancy-list anchors (Chunk-TermScore only).
	FancyRefs  map[string]blob.Ref
	FancyMinW  map[string]float32
	FancyBytes uint64
}

// --- per-structure snapshot/open helpers -------------------------------------

func (l *keyedList) state() TreeRef {
	r := treeRefOf(l.tree)
	r.Entries = l.entries
	return r
}

func openKeyedList(pool *buffer.Pool, r TreeRef) *keyedList {
	return &keyedList{tree: btree.Open(pool, r.Root, r.Size), entries: r.Entries}
}

func openScoreTable(pool *buffer.Pool, r TreeRef) *scoreTable {
	return &scoreTable{tree: btree.Open(pool, r.Root, r.Size)}
}

func openListTable(pool *buffer.Pool, r TreeRef) *listTable {
	return &listTable{tree: btree.Open(pool, r.Root, r.Size)}
}

func copyTokenCache(src map[DocID][]string) map[DocID][]string {
	out := make(map[DocID][]string, len(src))
	for doc, terms := range src {
		out[doc] = append([]string(nil), terms...)
	}
	return out
}

func copyRefs(src map[string]blob.Ref) map[string]blob.Ref {
	out := make(map[string]blob.Ref, len(src))
	for t, r := range src {
		out[t] = r
	}
	return out
}

// baseState fills the fields shared by every method.
func (b *base) baseState(kind string) MethodState {
	return MethodState{
		Kind:         kind,
		NumDocs:      b.numDocs.Load(),
		LongBytes:    b.longBytes,
		LongRawBytes: b.longRawBytes,
		LongRefs:     copyRefs(b.longRefs),
		Dict:         b.dict.State(),
		Score:        treeRefOf(b.score.tree),
	}
}

// openBase rebuilds the shared plumbing from a snapshot.  The document
// source must be rewired by the caller (SetSource) before maintenance runs.
func openBase(cfg Config, st *MethodState) (*base, error) {
	if cfg.Pool == nil {
		return nil, fmt.Errorf("index: Config.Pool is required")
	}
	cfg = cfg.Defaults()
	b := &base{
		cfg:          cfg,
		store:        blob.NewStore(cfg.Pool),
		dict:         text.RestoreDictionary(st.Dict),
		score:        openScoreTable(cfg.Pool, st.Score),
		longRefs:     copyRefs(st.LongRefs),
		longBytes:    st.LongBytes,
		longRawBytes: st.LongRawBytes,
	}
	b.numDocs.Store(st.NumDocs)
	b.epochs = epoch.New(cfg.Pool.FreePage)
	b.score.enableCOW(b.retirePage)
	return b, nil
}

// SetSource rewires the document source after a restore.  The source feeds
// maintenance paths that need a document's token stream (Score-method
// posting moves, deletions); it must present the same document IDs the
// index was built over.
func (b *base) SetSource(src DocSource) { b.src = src }

// --- per-method State -------------------------------------------------------

// State implements Method.
func (m *IDMethod) State() MethodState {
	st := m.baseState(m.Name())
	st.Lists = m.aux.state()
	st.KnownTokens = copyTokenCache(m.knownTokens)
	return st
}

// State implements Method.
func (m *ScoreMethod) State() MethodState {
	st := m.baseState(m.Name())
	st.Lists = m.lists.state()
	return st
}

// State implements Method.
func (m *ScoreThresholdMethod) State() MethodState {
	st := m.baseState(m.Name())
	st.Lists = m.short.state()
	st.ListTable = treeRefOf(m.listScore.tree)
	st.KnownTokens = copyTokenCache(m.knownTokens)
	st.ScoreDir = append([]float64(nil), m.scoreDir...)
	return st
}

// State implements Method.
func (m *ChunkMethod) State() MethodState {
	st := m.baseState(m.Name())
	st.Lists = m.short.state()
	st.ListTable = treeRefOf(m.listChunk.tree)
	st.KnownTokens = copyTokenCache(m.knownTokens)
	if m.chunks != nil {
		st.ChunkLower = append([]float64(nil), m.chunks.lower...)
	}
	return st
}

// State implements Method.
func (m *ChunkTermScoreMethod) State() MethodState {
	st := m.ChunkMethod.State()
	st.Kind = m.Name()
	st.FancyRefs = copyRefs(m.fancyRefs)
	st.FancyMinW = make(map[string]float32, len(m.fancyMinW))
	for t, w := range m.fancyMinW {
		st.FancyMinW[t] = w
	}
	st.FancyBytes = m.fancyBytes
	return st
}

// --- Restore ----------------------------------------------------------------

// Restore reattaches a method to the structures a checkpoint recorded.  It
// is the inverse of Method.State(): no pages are read and nothing is
// rebuilt; the returned method serves queries and updates against the trees
// and blobs already in the page file.  Call SetSource afterwards to rewire
// the document source.
func Restore(cfg Config, st MethodState) (Method, error) {
	b, err := openBase(cfg, &st)
	if err != nil {
		return nil, err
	}
	// Each constructor below reattaches its trees and then runs the method's
	// initSnapshots, which COW-enables the restored trees and publishes the
	// first post-restore snapshot.
	switch st.Kind {
	case "ID", "ID-TermScore":
		m := &IDMethod{
			base:           b,
			withTermScores: st.Kind == "ID-TermScore",
			aux:            openKeyedList(b.cfg.Pool, st.Lists),
			knownTokens:    copyTokenCache(st.KnownTokens),
		}
		m.initSnapshots()
		return m, nil
	case "Score":
		m := &ScoreMethod{
			base:  b,
			lists: openKeyedList(b.cfg.Pool, st.Lists),
		}
		m.initSnapshots()
		return m, nil
	case "Score-Threshold":
		m := &ScoreThresholdMethod{
			base:        b,
			short:       openKeyedList(b.cfg.Pool, st.Lists),
			listScore:   openListTable(b.cfg.Pool, st.ListTable),
			knownTokens: copyTokenCache(st.KnownTokens),
			scoreDir:    append([]float64(nil), st.ScoreDir...),
		}
		m.initSnapshots()
		return m, nil
	case "Chunk", "Chunk-TermScore":
		cm := &ChunkMethod{
			base:        b,
			short:       openKeyedList(b.cfg.Pool, st.Lists),
			listChunk:   openListTable(b.cfg.Pool, st.ListTable),
			knownTokens: copyTokenCache(st.KnownTokens),
		}
		if len(st.ChunkLower) > 0 {
			cm.chunks = &chunker{lower: append([]float64(nil), st.ChunkLower...)}
		}
		if st.Kind == "Chunk" {
			cm.initSnapshots()
			return cm, nil
		}
		cts := &ChunkTermScoreMethod{
			ChunkMethod: cm,
			fancyRefs:   copyRefs(st.FancyRefs),
			fancyMinW:   make(map[string]float32, len(st.FancyMinW)),
			fancyBytes:  st.FancyBytes,
		}
		for t, w := range st.FancyMinW {
			cts.fancyMinW[t] = w
		}
		cts.initSnapshots()
		return cts, nil
	default:
		return nil, fmt.Errorf("index: cannot restore unknown method kind %q", st.Kind)
	}
}
