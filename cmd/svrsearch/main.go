// Command svrsearch builds an Internet-Archive-style movie database, creates
// an SVR text index over the movie descriptions (ranked by review ratings,
// visits and downloads, exactly like the paper's running example), and
// answers keyword queries interactively from stdin.
//
// Commands at the prompt:
//
//	<keywords>            conjunctive top-k search
//	any <keywords>        disjunctive top-k search
//	visit <mID> <delta>   bump a movie's visit count (a structured update);
//	                      the next search reflects the new ranking
//	quit                  exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"svrdb/internal/core"
	"svrdb/internal/relation"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/workload"
)

func main() {
	var (
		movies = flag.Int("movies", 2000, "number of movies to generate")
		k      = flag.Int("k", 10, "results per query")
		method = flag.String("method", "chunk", "index method: id, score, score-threshold, chunk, id-termscore, chunk-termscore")
		seed   = flag.Int64("seed", 11, "random seed")
	)
	flag.Parse()

	pool := buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), 16384)
	db := relation.NewDB(pool)
	params := workload.DefaultArchiveParams()
	params.NumMovies = *movies
	params.Seed = *seed
	fmt.Printf("building archive database with %d movies...\n", *movies)
	if _, err := workload.BuildArchiveDB(db, params); err != nil {
		fmt.Fprintln(os.Stderr, "svrsearch:", err)
		os.Exit(1)
	}

	engine := core.NewEngine(db, core.Options{})
	ti, err := engine.CreateTextIndex("movies_desc", "Movies", "desc", core.IndexOptions{
		Method: core.MethodKind(*method),
		Spec:   workload.ArchiveSpec(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "svrsearch:", err)
		os.Exit(1)
	}
	fmt.Printf("index ready (method=%s, long lists %.2f MB)\n", ti.Stats().Method,
		float64(ti.Stats().LongListBytes)/(1024*1024))
	fmt.Println("type keywords to search, 'visit <mID> <delta>' to simulate a flash crowd, 'quit' to exit")

	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("svr> ")
		if !scanner.Scan() {
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		if strings.HasPrefix(line, "visit ") {
			fields := strings.Fields(line)
			if len(fields) != 3 {
				fmt.Println("usage: visit <mID> <delta>")
				continue
			}
			mID, err1 := strconv.ParseInt(fields[1], 10, 64)
			delta, err2 := strconv.ParseInt(fields[2], 10, 64)
			if err1 != nil || err2 != nil {
				fmt.Println("usage: visit <mID> <delta>")
				continue
			}
			if err := bumpVisits(db, mID, delta); err != nil {
				fmt.Println("error:", err)
				continue
			}
			score, _, _ := ti.ScoreOf(mID)
			fmt.Printf("movie %d visits increased by %d; new SVR score %.1f\n", mID, delta, score)
			continue
		}

		disjunctive := false
		query := line
		if strings.HasPrefix(line, "any ") {
			disjunctive = true
			query = strings.TrimPrefix(line, "any ")
		}
		res, err := ti.Search(core.SearchRequest{Query: query, K: *k, Disjunctive: disjunctive, LoadRows: true})
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		if len(res.Hits) == 0 {
			fmt.Println("no results")
			continue
		}
		for i, hit := range res.Hits {
			name := "?"
			if hit.Row != nil {
				name = hit.Row[1].S
			}
			fmt.Printf("%2d. [score %10.1f] movie %-6d %s\n", i+1, hit.Score, hit.PK, name)
		}
		fmt.Printf("(%d postings scanned, early stop: %v)\n", res.PostingsScanned, res.Stopped)
	}
}

func bumpVisits(db *relation.DB, mID, delta int64) error {
	stats, err := db.Table("Statistics")
	if err != nil {
		return err
	}
	row, err := stats.Get(mID)
	if err != nil {
		return err
	}
	return stats.Update(mID, map[string]relation.Value{"nVisit": relation.Int(row[2].I + delta)})
}
