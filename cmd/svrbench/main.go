// Command svrbench regenerates the paper's experiments (every table and
// figure of §5) against this implementation.
//
// Usage:
//
//	svrbench -list
//	svrbench -experiment table2 -scale 0.5 -updates 10000 -queries 50
//	svrbench -experiment all -latency 200us
//
// Each experiment prints a table whose rows correspond to the paper's rows
// or series; the "note:" lines state the qualitative shape the paper reports
// so runs can be compared at a glance.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"svrdb/internal/bench"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available experiments and exit")
		experiment = flag.String("experiment", "all", "experiment ID to run (see -list), or 'all'")
		scale      = flag.Float64("scale", 0, "collection scale factor (default 0.25)")
		updates    = flag.Int("updates", 0, "number of score updates (default 4000)")
		queries    = flag.Int("queries", 0, "number of queries per data point (default 20)")
		k          = flag.Int("k", 0, "number of results per query (default 10)")
		meanStep   = flag.Float64("step", 0, "mean score-update step (default 100)")
		latency    = flag.Duration("latency", 0, "simulated per-page read latency (e.g. 200us) to emulate a cold disk")
		warmCache  = flag.Bool("warm", false, "keep the buffer pool warm between queries (default: cold cache, as in the paper)")
		poolPages  = flag.Int("pool", 0, "buffer pool capacity in pages (default 4096)")
		seed       = flag.Int64("seed", 0, "random seed (default 1)")
	)
	flag.Parse()

	if *list {
		fmt.Println("Available experiments:")
		for _, e := range bench.Registry() {
			fmt.Printf("  %-18s %-24s %s\n", e.ID, "("+e.Paper+")", e.Description)
		}
		return
	}

	opts := bench.DefaultOptions()
	if *scale > 0 {
		opts.Scale = *scale
	}
	if *updates > 0 {
		opts.NumUpdates = *updates
	}
	if *queries > 0 {
		opts.NumQueries = *queries
	}
	if *k > 0 {
		opts.K = *k
	}
	if *meanStep > 0 {
		opts.MeanStep = *meanStep
	}
	if *latency > 0 {
		opts.ReadLatency = *latency
	}
	if *poolPages > 0 {
		opts.PoolPages = *poolPages
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	opts.ColdCache = !*warmCache

	var toRun []bench.Experiment
	if *experiment == "all" {
		toRun = bench.Registry()
	} else {
		e, ok := bench.Lookup(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "svrbench: unknown experiment %q (use -list)\n", *experiment)
			os.Exit(2)
		}
		toRun = []bench.Experiment{e}
	}

	for _, e := range toRun {
		start := time.Now()
		table, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svrbench: experiment %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		if _, err := table.WriteTo(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "svrbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
