// Command svrload generates a synthetic SVR workload and reports its
// statistics: collection size, score distribution, update trace and query
// workload.  It is the data-preparation companion of svrbench and a quick
// way to sanity-check workload parameters before a long benchmark run.
//
// With -build it also performs the ingestion itself: the chosen index
// method is bulk-built over the generated corpus (the leaf-packing bulk
// loader) and the update trace is applied through the batched write
// pipeline (Method.ApplyUpdates), reporting the time of each stage.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"svrdb/internal/index"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/workload"
)

func main() {
	var (
		docs      = flag.Int("docs", 8000, "number of documents")
		terms     = flag.Int("terms", 200, "tokens per document")
		vocab     = flag.Int("vocab", 20000, "vocabulary size")
		updates   = flag.Int("updates", 10000, "score updates to generate")
		meanStep  = flag.Float64("step", 100, "mean score-update step")
		seed      = flag.Int64("seed", 1, "random seed")
		build     = flag.Bool("build", false, "bulk-build an index over the corpus and replay the trace through the batched write pipeline")
		method    = flag.String("method", "chunk", "index method for -build: id, score, score-threshold, chunk, id-termscore, chunk-termscore")
		batchSize = flag.Int("batch", 512, "ApplyUpdates batch size for -build")
		dataPath  = flag.String("data", "", "durable data file for -build; empty builds in memory.  Each stage commits, so the built structures survive the process")
	)
	flag.Parse()

	params := workload.Params{
		NumDocs:     *docs,
		TermsPerDoc: *terms,
		VocabSize:   *vocab,
		TermZipf:    0.1,
		ScoreMax:    100000,
		ScoreZipf:   0.75,
		Seed:        *seed,
	}
	fmt.Printf("generating corpus: %d docs x %d tokens, vocabulary %d\n", params.NumDocs, params.TermsPerDoc, params.VocabSize)
	corpus := workload.Generate(params)

	scores := make([]float64, 0, corpus.NumDocs())
	totalTokens := 0
	if err := corpus.ForEach(func(doc workload.DocID, tokens []string) error {
		scores = append(scores, corpus.Score(doc))
		totalTokens += len(tokens)
		return nil
	}); err != nil {
		fmt.Fprintln(os.Stderr, "svrload:", err)
		os.Exit(1)
	}
	sort.Float64s(scores)
	fmt.Printf("distinct terms observed: %d\n", corpus.DistinctTermCount())
	fmt.Printf("total tokens: %d\n", totalTokens)
	fmt.Printf("score percentiles: p1=%.1f p50=%.1f p99=%.1f max=%.1f\n",
		percentile(scores, 0.01), percentile(scores, 0.50), percentile(scores, 0.99), scores[len(scores)-1])

	up := workload.DefaultUpdateParams()
	up.NumUpdates = *updates
	up.MeanStep = *meanStep
	up.Seed = *seed + 1
	trace := workload.GenerateUpdates(corpus, up)
	var increases, decreases int
	var maxJump float64
	for i, u := range trace {
		prev := corpus.Score(u.Doc)
		if i > 0 {
			// Not exact per-doc history, but enough for a summary.
			prev = trace[i-1].NewScore
		}
		if u.NewScore >= prev {
			increases++
		} else {
			decreases++
		}
		if math.Abs(u.NewScore-prev) > maxJump {
			maxJump = math.Abs(u.NewScore - prev)
		}
	}
	fmt.Printf("update trace: %d updates, %d increases / %d decreases (approx), largest jump %.1f\n",
		len(trace), increases, decreases, maxJump)

	for _, class := range []workload.QueryClass{workload.Unselective, workload.MediumSelective, workload.Selective} {
		qp := workload.QueryParams{Class: class, TermsPerQuery: 2, NumQueries: 5, Seed: *seed + 2}
		qs := workload.GenerateQueries(corpus, qp)
		fmt.Printf("%s queries: %v\n", class, qs)
	}

	if *build {
		if err := buildAndIngest(corpus, trace, *method, *batchSize, *dataPath); err != nil {
			fmt.Fprintln(os.Stderr, "svrload:", err)
			os.Exit(1)
		}
	}
}

// buildAndIngest bulk-builds the chosen method over the corpus and replays
// the score-update trace through ApplyUpdates, printing stage timings.  With
// a data path the pagefile is disk-backed and each stage ends in an atomic
// commit (checkpoint), so the build is crash-durable.
func buildAndIngest(corpus *workload.Corpus, trace []workload.ScoreUpdate, method string, batchSize int, dataPath string) error {
	if batchSize < 1 {
		batchSize = 1
	}
	var file pagefile.File
	if dataPath == "" {
		file = pagefile.MustNewMem(pagefile.DefaultPageSize)
	} else {
		var err error
		if file, err = pagefile.Open(dataPath); err != nil {
			return err
		}
		defer file.Close()
	}
	pool := buffer.MustNew(file, 8192)
	cfg := index.Config{Pool: pool}
	var (
		m   index.Method
		err error
	)
	switch method {
	case "id":
		m, err = index.NewID(cfg)
	case "score":
		m, err = index.NewScore(cfg)
	case "score-threshold":
		m, err = index.NewScoreThreshold(cfg)
	case "chunk":
		m, err = index.NewChunk(cfg)
	case "id-termscore":
		m, err = index.NewIDTermScore(cfg)
	case "chunk-termscore":
		m, err = index.NewChunkTermScore(cfg)
	default:
		return fmt.Errorf("unknown method %q", method)
	}
	if err != nil {
		return err
	}

	start := time.Now()
	if err := m.Build(corpus, corpus.ScoreFunc()); err != nil {
		return err
	}
	if err := pool.Checkpoint(nil); err != nil {
		return err
	}
	buildTime := time.Since(start)
	stats := m.Stats()
	fmt.Printf("bulk build (%s): %s, long lists %.2f MB\n", m.Name(), buildTime.Round(time.Millisecond), float64(stats.LongListBytes)/(1024*1024))
	if stats.LongListRawBytes > 0 {
		fmt.Printf("postings: %.2f MB stored vs %.2f MB fixed-width (%.2fx compression)\n",
			float64(stats.LongListBytes)/(1024*1024),
			float64(stats.LongListRawBytes)/(1024*1024),
			float64(stats.LongListRawBytes)/float64(stats.LongListBytes))
	}
	if dataPath != "" {
		fmt.Printf("committed to %s (%.2f MB on disk)\n", dataPath, float64(file.SizeBytes())/(1024*1024))
	}

	if len(trace) == 0 {
		return nil
	}
	batch := make([]index.Update, 0, batchSize)
	start = time.Now()
	for lo := 0; lo < len(trace); lo += batchSize {
		hi := lo + batchSize
		if hi > len(trace) {
			hi = len(trace)
		}
		batch = batch[:0]
		for _, u := range trace[lo:hi] {
			batch = append(batch, index.Update{Op: index.ScoreOp, Doc: u.Doc, Score: u.NewScore})
		}
		if err := m.ApplyUpdates(batch); err != nil {
			return err
		}
	}
	if err := pool.Checkpoint(nil); err != nil {
		return err
	}
	ingestTime := time.Since(start)
	fmt.Printf("batched updates: %d in %s (%.0f updates/s, batch size %d)\n",
		len(trace), ingestTime.Round(time.Millisecond), float64(len(trace))/ingestTime.Seconds(), batchSize)
	if dataPath != "" {
		fs := file.Stats()
		fmt.Printf("durability: %d commits, %.2f MB WAL written, %d fsyncs\n",
			fs.Commits, float64(fs.WALBytes)/(1024*1024), fs.Fsyncs)
	}
	return nil
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
