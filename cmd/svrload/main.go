// Command svrload generates a synthetic SVR workload and reports its
// statistics: collection size, score distribution, update trace and query
// workload.  It is the data-preparation companion of svrbench and a quick
// way to sanity-check workload parameters before a long benchmark run.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"svrdb/internal/workload"
)

func main() {
	var (
		docs     = flag.Int("docs", 8000, "number of documents")
		terms    = flag.Int("terms", 200, "tokens per document")
		vocab    = flag.Int("vocab", 20000, "vocabulary size")
		updates  = flag.Int("updates", 10000, "score updates to generate")
		meanStep = flag.Float64("step", 100, "mean score-update step")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	params := workload.Params{
		NumDocs:     *docs,
		TermsPerDoc: *terms,
		VocabSize:   *vocab,
		TermZipf:    0.1,
		ScoreMax:    100000,
		ScoreZipf:   0.75,
		Seed:        *seed,
	}
	fmt.Printf("generating corpus: %d docs x %d tokens, vocabulary %d\n", params.NumDocs, params.TermsPerDoc, params.VocabSize)
	corpus := workload.Generate(params)

	scores := make([]float64, 0, corpus.NumDocs())
	totalTokens := 0
	if err := corpus.ForEach(func(doc workload.DocID, tokens []string) error {
		scores = append(scores, corpus.Score(doc))
		totalTokens += len(tokens)
		return nil
	}); err != nil {
		fmt.Fprintln(os.Stderr, "svrload:", err)
		os.Exit(1)
	}
	sort.Float64s(scores)
	fmt.Printf("distinct terms observed: %d\n", corpus.DistinctTermCount())
	fmt.Printf("total tokens: %d\n", totalTokens)
	fmt.Printf("score percentiles: p1=%.1f p50=%.1f p99=%.1f max=%.1f\n",
		percentile(scores, 0.01), percentile(scores, 0.50), percentile(scores, 0.99), scores[len(scores)-1])

	up := workload.DefaultUpdateParams()
	up.NumUpdates = *updates
	up.MeanStep = *meanStep
	up.Seed = *seed + 1
	trace := workload.GenerateUpdates(corpus, up)
	var increases, decreases int
	var maxJump float64
	for i, u := range trace {
		prev := corpus.Score(u.Doc)
		if i > 0 {
			// Not exact per-doc history, but enough for a summary.
			prev = trace[i-1].NewScore
		}
		if u.NewScore >= prev {
			increases++
		} else {
			decreases++
		}
		if math.Abs(u.NewScore-prev) > maxJump {
			maxJump = math.Abs(u.NewScore - prev)
		}
	}
	fmt.Printf("update trace: %d updates, %d increases / %d decreases (approx), largest jump %.1f\n",
		len(trace), increases, decreases, maxJump)

	for _, class := range []workload.QueryClass{workload.Unselective, workload.MediumSelective, workload.Selective} {
		qp := workload.QueryParams{Class: class, TermsPerQuery: 2, NumQueries: 5, Seed: *seed + 2}
		qs := workload.GenerateQueries(corpus, qp)
		fmt.Printf("%s queries: %v\n", class, qs)
	}
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
