// Command svrserve runs the SVR engine as an HTTP daemon: it builds the
// Internet-Archive-style movie database (the paper's running example),
// creates a text index over the movie descriptions, and serves the JSON API
// of internal/server until SIGINT/SIGTERM triggers a graceful shutdown —
// in-flight requests drain, then the engine closes with its pin audit.
//
// Usage:
//
//	svrserve -addr :8080 -movies 2000 -method chunk
//	svrserve -addr :8080 -data archive.svrdb   # build once, serve forever
//
//	curl localhost:8080/healthz
//	curl -d '{"query":"golden gate","k":5,"load_rows":true}' \
//	     localhost:8080/v1/indexes/movies_desc/search
//	curl -d '{"ops":[{"op":"update","table":"Statistics","pk":7,"set":{"nVisit":9000}}]}' \
//	     localhost:8080/v1/batch
//	curl localhost:8080/v1/stats
//
// Sharded serving.  The same binary runs three more shapes:
//
//	svrserve -addr :8080 -router -shards 4        # router over 4 in-process shards
//
//	svrserve -addr :8081 -shard-index 0 -shard-count 2   # shard server 0
//	svrserve -addr :8082 -shard-index 1 -shard-count 2   # shard server 1
//	svrserve -addr :8080 -router \
//	    -backends http://127.0.0.1:8081,http://127.0.0.1:8082 -hedge 50ms
//
// A shard server builds only its partition of the dataset (the generator's
// random stream is shared, so the shards exactly partition the single-node
// dataset); the router scatter-gathers searches across shards — with
// cluster-global IDF, so ranking is identical to a single node — and routes
// writes to the owning shard.  A dead shard degrades searches to partial
// results instead of failing them.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"svrdb/internal/core"
	"svrdb/internal/relation"
	"svrdb/internal/server"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/view"
	"svrdb/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		movies    = flag.Int("movies", 2000, "number of movies in the example dataset")
		method    = flag.String("method", "chunk", "index method: id, score, score-threshold, chunk, id-termscore, chunk-termscore")
		poolPages = flag.Int("pool", 16384, "buffer pool capacity in pages")
		seed      = flag.Int64("seed", 11, "random seed for the example dataset")
		drainWait = flag.Duration("drain", 30*time.Second, "how long shutdown waits for in-flight requests")
		dataPath  = flag.String("data", "", "durable data file; empty serves from memory.  A fresh file is built once, an existing file is recovered and served without rebuilding.  In -router mode with in-process shards, each shard appends .shard-N")

		router      = flag.Bool("router", false, "serve as a shard router instead of a single engine")
		shards      = flag.Int("shards", 2, "with -router and no -backends: number of in-process shards")
		backendsCSV = flag.String("backends", "", "with -router: comma-separated shard server URLs (e.g. http://127.0.0.1:8081,http://127.0.0.1:8082); empty runs in-process shards")
		hedge       = flag.Duration("hedge", 0, "with -router over HTTP backends: issue a hedge search request after this latency (0 disables)")
		partitioner = flag.String("partitioner", "", "partitioner routing rows to shards (default hash); must match across router and shard servers")

		shardIndex = flag.Int("shard-index", -1, "serve as shard N of -shard-count: build and serve only this shard's slice of the dataset")
		shardCount = flag.Int("shard-count", 0, "total shard count that -shard-index is part of")
	)
	flag.Parse()

	cfg := config{
		addr:        *addr,
		movies:      *movies,
		method:      *method,
		poolPages:   *poolPages,
		seed:        *seed,
		drainWait:   *drainWait,
		dataPath:    *dataPath,
		router:      *router,
		shards:      *shards,
		backends:    *backendsCSV,
		hedge:       *hedge,
		partitioner: *partitioner,
		shardIndex:  *shardIndex,
		shardCount:  *shardCount,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "svrserve:", err)
		os.Exit(1)
	}
}

type config struct {
	addr      string
	movies    int
	method    string
	poolPages int
	seed      int64
	drainWait time.Duration
	dataPath  string

	router      bool
	shards      int
	backends    string
	hedge       time.Duration
	partitioner string

	shardIndex int
	shardCount int
}

// archiveRoutingColumns is the placement rule for the example database:
// Movies route by primary key, Reviews colocate with their movie (the SVR
// spec averages a movie's local reviews), and Statistics' primary key sID
// equals mID so default pk routing already colocates it.
func archiveRoutingColumns() map[string]string {
	return map[string]string{"Reviews": "mID"}
}

// shardKeep returns the predicate selecting shard idx's movies under the
// named partitioner, or nil for an unsharded build.
func shardKeep(partitioner string, idx, count int) (func(int64) bool, error) {
	if count <= 1 {
		return nil, nil
	}
	part, err := core.PartitionerByName(partitioner)
	if err != nil {
		return nil, err
	}
	return func(mID int64) bool { return part.Shard(mID, count) == idx }, nil
}

// newEngine builds or reopens an engine holding the (possibly filtered)
// example dataset.  With a data path the engine is durable: the first run
// ingests the dataset and every later run recovers the committed state
// (replaying the WAL if the last run was killed) and serves it without
// rebuilding.
func newEngine(cfg config, dataPath string, keep func(int64) bool) (*core.Engine, error) {
	params := workload.DefaultArchiveParams()
	params.NumMovies = cfg.movies
	params.Seed = cfg.seed

	if dataPath == "" {
		pool := buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), cfg.poolPages)
		db := relation.NewDB(pool)
		n, err := workload.BuildArchiveDBFiltered(db, params, keep)
		if err != nil {
			return nil, err
		}
		fmt.Printf("built archive database slice: %d of %d movies\n", n, cfg.movies)
		engine := core.NewEngine(db, core.Options{})
		// Registered (not just passed inline) so POST /v1/indexes can
		// resolve "archive" for online index creation.
		engine.RegisterSpec("archive", workload.ArchiveSpec())
		if _, err := engine.CreateTextIndex("movies_desc", "Movies", "desc", core.IndexOptions{
			Method:   core.MethodKind(cfg.method),
			SpecName: "archive",
		}); err != nil {
			return nil, err
		}
		return engine, nil
	}

	open := time.Now()
	engine, err := core.Open(dataPath, core.OpenOptions{
		Specs:     map[string]view.Spec{"archive": workload.ArchiveSpec()},
		PoolPages: cfg.poolPages,
	})
	if err != nil {
		return nil, err
	}
	if len(engine.TextIndexNames()) > 0 {
		fs := engine.Pool().File().Stats()
		fmt.Printf("recovered %s in %s (%d WAL replays, %d torn pages detected)\n",
			dataPath, time.Since(open).Round(time.Millisecond), fs.Recoveries, fs.TornPages)
		return engine, nil
	}
	n, err := workload.BuildArchiveDBFiltered(engine.DB(), params, keep)
	if err != nil {
		engine.Close()
		return nil, err
	}
	fmt.Printf("built archive database slice into %s: %d of %d movies\n", dataPath, n, cfg.movies)
	if _, err := engine.CreateTextIndex("movies_desc", "Movies", "desc", core.IndexOptions{
		Method:   core.MethodKind(cfg.method),
		Spec:     workload.ArchiveSpec(),
		SpecName: "archive",
	}); err != nil {
		engine.Close()
		return nil, err
	}
	return engine, nil
}

// daemon is what the serve loop needs from either frontend; *server.Server
// and *server.Router both satisfy it.
type daemon interface {
	Start(addr string) (string, error)
	Done() <-chan struct{}
	ServeErr() error
	Shutdown(ctx context.Context) error
}

// newSingleServer builds the classic single-engine server, optionally
// restricted to one shard's slice (-shard-index/-shard-count).
func newSingleServer(cfg config) (daemon, error) {
	var keep func(int64) bool
	if cfg.shardIndex >= 0 {
		if cfg.shardCount < 1 || cfg.shardIndex >= cfg.shardCount {
			return nil, fmt.Errorf("-shard-index %d requires -shard-count > %d", cfg.shardIndex, cfg.shardIndex)
		}
		var err error
		keep, err = shardKeep(cfg.partitioner, cfg.shardIndex, cfg.shardCount)
		if err != nil {
			return nil, err
		}
		fmt.Printf("serving shard %d of %d\n", cfg.shardIndex, cfg.shardCount)
	}
	engine, err := newEngine(cfg, cfg.dataPath, keep)
	if err != nil {
		return nil, err
	}
	ti, err := engine.TextIndex("movies_desc")
	if err != nil {
		return nil, err
	}
	fmt.Printf("index ready (method=%s, long lists %.2f MB)\n",
		ti.Stats().Method, float64(ti.Stats().LongListBytes)/(1024*1024))
	return server.New(engine, server.Options{ReadTimeout: 30 * time.Second}), nil
}

// newRouterServer builds the router frontend: over remote shard servers when
// -backends is given, over in-process shard engines otherwise.
func newRouterServer(cfg config) (daemon, error) {
	var backends []server.Backend
	if cfg.backends != "" {
		for _, u := range strings.Split(cfg.backends, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			backends = append(backends, server.NewHTTPBackend(u, cfg.hedge))
		}
		if len(backends) == 0 {
			return nil, fmt.Errorf("-backends parsed to zero URLs")
		}
		fmt.Printf("routing across %d shard servers (hedge %s)\n", len(backends), cfg.hedge)
	} else {
		if cfg.shards < 1 {
			return nil, fmt.Errorf("-shards must be at least 1")
		}
		for i := 0; i < cfg.shards; i++ {
			keep, err := shardKeep(cfg.partitioner, i, cfg.shards)
			if err != nil {
				return nil, err
			}
			dataPath := cfg.dataPath
			if dataPath != "" {
				dataPath = fmt.Sprintf("%s.shard-%d", dataPath, i)
			}
			engine, err := newEngine(cfg, dataPath, keep)
			if err != nil {
				for _, b := range backends {
					b.Close()
				}
				return nil, err
			}
			backends = append(backends, server.NewEngineBackend(fmt.Sprintf("shard-%d", i), engine, true))
		}
		fmt.Printf("routing across %d in-process shards\n", len(backends))
	}
	return server.NewRouter(backends, server.RouterOptions{
		ReadTimeout:    30 * time.Second,
		Partitioner:    cfg.partitioner,
		RoutingColumns: archiveRoutingColumns(),
	})
}

func run(cfg config) error {
	var (
		d   daemon
		err error
	)
	if cfg.router {
		d, err = newRouterServer(cfg)
	} else {
		d, err = newSingleServer(cfg)
	}
	if err != nil {
		return err
	}
	bound, err := d.Start(cfg.addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving on http://%s (SIGINT/SIGTERM to drain and stop)\n", bound)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case <-stop:
		fmt.Println("draining...")
	case <-d.Done():
		// The accept loop died on its own (e.g. fd exhaustion): surface it
		// now instead of serving nothing until an operator notices.
		err := d.ServeErr()
		ctx, cancel := context.WithTimeout(context.Background(), cfg.drainWait)
		defer cancel()
		if shutdownErr := d.Shutdown(ctx); shutdownErr != nil {
			return shutdownErr
		}
		if err == nil {
			err = fmt.Errorf("server stopped unexpectedly")
		}
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainWait)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Println("shutdown complete (in-flight requests drained, pin audit clean)")
	return nil
}
