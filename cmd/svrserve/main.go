// Command svrserve runs the SVR engine as an HTTP daemon: it builds the
// Internet-Archive-style movie database (the paper's running example),
// creates a text index over the movie descriptions, and serves the JSON API
// of internal/server until SIGINT/SIGTERM triggers a graceful shutdown —
// in-flight requests drain, then the engine closes with its pin audit.
//
// Usage:
//
//	svrserve -addr :8080 -movies 2000 -method chunk
//	svrserve -addr :8080 -data archive.svrdb   # build once, serve forever
//
//	curl localhost:8080/healthz
//	curl -d '{"query":"golden gate","k":5,"load_rows":true}' \
//	     localhost:8080/v1/indexes/movies_desc/search
//	curl -d '{"ops":[{"op":"update","table":"Statistics","pk":7,"set":{"nVisit":9000}}]}' \
//	     localhost:8080/v1/batch
//	curl localhost:8080/v1/stats
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"svrdb/internal/core"
	"svrdb/internal/relation"
	"svrdb/internal/server"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/view"
	"svrdb/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		movies    = flag.Int("movies", 2000, "number of movies in the example dataset")
		method    = flag.String("method", "chunk", "index method: id, score, score-threshold, chunk, id-termscore, chunk-termscore")
		poolPages = flag.Int("pool", 16384, "buffer pool capacity in pages")
		seed      = flag.Int64("seed", 11, "random seed for the example dataset")
		drainWait = flag.Duration("drain", 30*time.Second, "how long shutdown waits for in-flight requests")
		dataPath  = flag.String("data", "", "durable data file; empty serves from memory.  A fresh file is built once, an existing file is recovered and served without rebuilding")
	)
	flag.Parse()

	if err := run(*addr, *movies, *method, *poolPages, *seed, *drainWait, *dataPath); err != nil {
		fmt.Fprintln(os.Stderr, "svrserve:", err)
		os.Exit(1)
	}
}

// newEngine builds or reopens the engine.  With a data path the engine is
// durable: the first run ingests the example dataset and every later run
// recovers the committed state (replaying the WAL if the last run was killed)
// and serves it without rebuilding.
func newEngine(movies int, method string, poolPages int, seed int64, dataPath string) (*core.Engine, error) {
	params := workload.DefaultArchiveParams()
	params.NumMovies = movies
	params.Seed = seed

	if dataPath == "" {
		pool := buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), poolPages)
		db := relation.NewDB(pool)
		fmt.Printf("building archive database with %d movies...\n", movies)
		if _, err := workload.BuildArchiveDB(db, params); err != nil {
			return nil, err
		}
		engine := core.NewEngine(db, core.Options{})
		if _, err := engine.CreateTextIndex("movies_desc", "Movies", "desc", core.IndexOptions{
			Method: core.MethodKind(method),
			Spec:   workload.ArchiveSpec(),
		}); err != nil {
			return nil, err
		}
		return engine, nil
	}

	open := time.Now()
	engine, err := core.Open(dataPath, core.OpenOptions{
		Specs:     map[string]view.Spec{"archive": workload.ArchiveSpec()},
		PoolPages: poolPages,
	})
	if err != nil {
		return nil, err
	}
	if len(engine.TextIndexNames()) > 0 {
		fs := engine.Pool().File().Stats()
		fmt.Printf("recovered %s in %s (%d WAL replays, %d torn pages detected)\n",
			dataPath, time.Since(open).Round(time.Millisecond), fs.Recoveries, fs.TornPages)
		return engine, nil
	}
	fmt.Printf("building archive database with %d movies into %s...\n", movies, dataPath)
	if _, err := workload.BuildArchiveDB(engine.DB(), params); err != nil {
		engine.Close()
		return nil, err
	}
	if _, err := engine.CreateTextIndex("movies_desc", "Movies", "desc", core.IndexOptions{
		Method:   core.MethodKind(method),
		Spec:     workload.ArchiveSpec(),
		SpecName: "archive",
	}); err != nil {
		engine.Close()
		return nil, err
	}
	return engine, nil
}

func run(addr string, movies int, method string, poolPages int, seed int64, drainWait time.Duration, dataPath string) error {
	engine, err := newEngine(movies, method, poolPages, seed, dataPath)
	if err != nil {
		return err
	}
	ti, err := engine.TextIndex("movies_desc")
	if err != nil {
		return err
	}
	fmt.Printf("index ready (method=%s, long lists %.2f MB)\n",
		ti.Stats().Method, float64(ti.Stats().LongListBytes)/(1024*1024))

	srv := server.New(engine, server.Options{ReadTimeout: 30 * time.Second})
	bound, err := srv.Start(addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving on http://%s (SIGINT/SIGTERM to drain and stop)\n", bound)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case <-stop:
		fmt.Println("draining...")
	case <-srv.Done():
		// The accept loop died on its own (e.g. fd exhaustion): surface it
		// now instead of serving nothing until an operator notices.
		err := srv.ServeErr()
		ctx, cancel := context.WithTimeout(context.Background(), drainWait)
		defer cancel()
		if shutdownErr := srv.Shutdown(ctx); shutdownErr != nil {
			return shutdownErr
		}
		if err == nil {
			err = fmt.Errorf("server stopped unexpectedly")
		}
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Println("shutdown complete (in-flight requests drained, pin audit clean)")
	return nil
}
