module svrdb

go 1.24
