#!/usr/bin/env bash
# Server smoke test: build svrserve, start it on the movies example dataset,
# run a scripted query + batch update + tenant registration + change-stream
# subscription + stats scrape over real HTTP, then SIGTERM it and assert a
# clean graceful shutdown (drain + engine close with its pin audit).  A
# durability leg SIGKILLs a -data daemon and asserts WAL recovery; a router
# leg fronts two shard servers with -router, SIGKILLs one shard and asserts
# degraded-but-serving, restarts it and asserts full recovery, then runs an
# online index create/query/drop through the router under a concurrent
# search storm that must see zero failures.  CI runs this on every push; it
# also works locally.
set -euo pipefail
cd "$(dirname "$0")/.."

LOG=$(mktemp)
BIN=$(mktemp -d)/svrserve

go build -o "$BIN" ./cmd/svrserve
# Port 0: the kernel picks a free port, so a leaked daemon or a parallel
# job on a shared runner cannot collide; the bound address is parsed from
# the daemon's "serving on http://..." line.
"$BIN" -addr 127.0.0.1:0 -movies 500 >"$LOG" 2>&1 &
PID=$!
cleanup() { kill "$PID" 2>/dev/null || true; cat "$LOG"; }
trap cleanup EXIT

# Wait for the daemon to finish building the dataset and start listening.
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's|^serving on http://\([^ ]*\).*|\1|p' "$LOG")
  if [ -n "$ADDR" ] && curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.2
done
[ -n "$ADDR" ] || { echo "daemon never started listening" >&2; exit 1; }

echo "--- healthz"
curl -fsS "http://$ADDR/healthz" | grep -q '"status":"ok"'

echo "--- search"
curl -fsS -d '{"query":"golden gate","k":5,"load_rows":true}' \
  "http://$ADDR/v1/indexes/movies_desc/search" | grep -q '"hits"'

echo "--- batch update (structured update re-ranks via the score view)"
curl -fsS -d '{"ops":[{"op":"update","table":"Statistics","pk":7,"set":{"nVisit":9000}}]}' \
  "http://$ADDR/v1/batch" | grep -q '"applied":1'

echo "--- row insert through ApplyBatch"
curl -fsS -d '{"rows":[{"rID":900001,"mID":7,"rating":5}]}' \
  "http://$ADDR/v1/tables/Reviews/rows" | grep -q '"inserted":1'

echo "--- stats scrape"
STATS=$(curl -fsS "http://$ADDR/v1/stats")
echo "$STATS" | grep -q '"table_patches"'
echo "$STATS" | grep -q '"endpoints"'
echo "$STATS" | grep -q '"long_list_raw_bytes"'
echo "$STATS" | grep -q '"compression_ratio"'
echo "$STATS" | grep -q '"pages_read"'
# Long lists must actually be compressed: every index with a nonzero raw
# footprint must report ratio > 1 (raw bytes strictly above stored bytes).
echo "$STATS" | python3 -c '
import json, sys
stats = json.load(sys.stdin)
for name, idx in stats["indexes"].items():
    raw, stored = idx["long_list_raw_bytes"], idx["long_list_bytes"]
    if raw > 0 and idx["compression_ratio"] <= 1.0:
        sys.exit(f"{name}: raw {raw} B stored {stored} B — not compressed")
'

echo "--- tenant registration shows up in /v1/tenants and /v1/stats"
curl -fsS -d '{"name":"acme","max_rows":2}' "http://$ADDR/v1/tenants" | grep -q '"name":"acme"'
curl -fsS "http://$ADDR/v1/tenants" | grep -q '"max_rows":2'
curl -fsS "http://$ADDR/v1/stats" | grep -q '"tenants"'

echo "--- change stream delivers a committed insert"
CH=$(mktemp)
curl -fsS --no-buffer -m 15 "http://$ADDR/v1/changes?table=Reviews" >"$CH" &
CHPID=$!
sleep 0.3
curl -fsS -d '{"rows":[{"rID":900002,"mID":7,"rating":4}]}' \
  "http://$ADDR/v1/tables/Reviews/rows" | grep -q '"inserted":1'
SEEN=""
for _ in $(seq 1 50); do
  if grep -q '"pk":900002' "$CH" 2>/dev/null; then SEEN=1; break; fi
  sleep 0.1
done
kill "$CHPID" 2>/dev/null || true
wait "$CHPID" 2>/dev/null || true
[ -n "$SEEN" ] || { echo "change stream never delivered the insert" >&2; cat "$CH" >&2; exit 1; }
grep -q '"kind":"insert"' "$CH"

echo "--- malformed request gets a clean 400"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -d '{"query":' \
  "http://$ADDR/v1/indexes/movies_desc/search")
[ "$CODE" = "400" ]

echo "--- graceful shutdown (SIGTERM: drain, Engine.Close, pin audit)"
kill -TERM "$PID"
wait "$PID" # non-zero exit (failed drain or pin audit) fails the smoke
grep -q "shutdown complete" "$LOG"

# --- restart leg: durability under kill -9 -----------------------------------
# Serve against a -data file, commit a batch, SIGKILL the daemon mid-flight,
# restart against the same file, and require the committed query results to
# come back byte-identical — the WAL recovery path over real HTTP.
DATA=$(mktemp -d)/smoke.svrdb
LOG2=$(mktemp)

start_durable() {
  "$BIN" -addr 127.0.0.1:0 -movies 500 -data "$DATA" >"$LOG2" 2>&1 &
  PID=$!
  ADDR=""
  for _ in $(seq 1 150); do
    ADDR=$(sed -n 's|^serving on http://\([^ ]*\).*|\1|p' "$LOG2")
    if [ -n "$ADDR" ] && curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.2
  done
  [ -n "$ADDR" ] || { echo "durable daemon never started listening" >&2; cat "$LOG2" >&2; exit 1; }
}

cleanup2() { kill -9 "$PID" 2>/dev/null || true; cat "$LOG2"; }
trap cleanup2 EXIT

echo "--- durable build + committed batch"
start_durable
curl -fsS -d '{"ops":[{"op":"update","table":"Statistics","pk":7,"set":{"nVisit":123456}}]}' \
  "http://$ADDR/v1/batch" | grep -q '"applied":1'
PRE=$(curl -fsS -d '{"query":"golden gate","k":5}' "http://$ADDR/v1/indexes/movies_desc/search")

echo "--- SIGKILL mid-serve"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true

echo "--- restart from the data file, assert committed state intact"
: >"$LOG2"
start_durable
grep -q "recovered" "$LOG2" || { echo "restart rebuilt instead of recovering" >&2; exit 1; }
POST=$(curl -fsS -d '{"query":"golden gate","k":5}' "http://$ADDR/v1/indexes/movies_desc/search")
[ "$PRE" = "$POST" ] || {
  echo "post-restart results diverge from committed pre-kill results" >&2
  echo "pre:  $PRE" >&2
  echo "post: $POST" >&2
  exit 1
}
echo "--- second graceful shutdown closes the durable engine"
kill -TERM "$PID"
wait "$PID"
grep -q "shutdown complete" "$LOG2"

trap - EXIT

# --- router leg: 2 shard servers + router, degraded reads, recovery ----------
# Start two shard servers (each builds its hash slice of the same dataset),
# front them with a router, query through it, SIGKILL one shard and assert
# the router keeps serving partial results with a degraded /healthz, then
# restart the shard and assert the router recovers to full results.
SLOG0=$(mktemp)
SLOG1=$(mktemp)
RLOG=$(mktemp)
SPID0="" SPID1="" RPID=""

cleanup3() {
  for p in "$SPID0" "$SPID1" "$RPID"; do
    [ -n "$p" ] && kill -9 "$p" 2>/dev/null || true
  done
  echo "--- shard 0 log"; cat "$SLOG0"
  echo "--- shard 1 log"; cat "$SLOG1"
  echo "--- router log"; cat "$RLOG"
}
trap cleanup3 EXIT

# wait_addr LOG: poll LOG for the bound address and echo it once /healthz
# answers (any status code — a degraded router still counts as listening).
wait_addr() {
  local a=""
  for _ in $(seq 1 150); do
    a=$(sed -n 's|^serving on http://\([^ ]*\).*|\1|p' "$1")
    if [ -n "$a" ] && curl -sS -o /dev/null "http://$a/healthz" 2>/dev/null; then
      echo "$a"
      return 0
    fi
    sleep 0.2
  done
  return 1
}

echo "--- start 2 shard servers + router"
"$BIN" -addr 127.0.0.1:0 -movies 500 -shard-index 0 -shard-count 2 >"$SLOG0" 2>&1 &
SPID0=$!
"$BIN" -addr 127.0.0.1:0 -movies 500 -shard-index 1 -shard-count 2 >"$SLOG1" 2>&1 &
SPID1=$!
SADDR0=$(wait_addr "$SLOG0") || { echo "shard 0 never started" >&2; exit 1; }
SADDR1=$(wait_addr "$SLOG1") || { echo "shard 1 never started" >&2; exit 1; }
"$BIN" -addr 127.0.0.1:0 -router -backends "http://$SADDR0,http://$SADDR1" -hedge 250ms >"$RLOG" 2>&1 &
RPID=$!
RADDR=$(wait_addr "$RLOG") || { echo "router never started" >&2; exit 1; }

echo "--- scatter-gather search through the router (all shards healthy)"
FULL=$(curl -fsS -d '{"query":"golden gate","k":5}' "http://$RADDR/v1/indexes/movies_desc/search")
echo "$FULL" | grep -q '"hits"'
echo "$FULL" | grep -q '"partial"' && { echo "healthy cluster returned partial results" >&2; exit 1; }
curl -fsS "http://$RADDR/healthz" | grep -q '"healthy_shards":2'

echo "--- aggregated stats name both shards"
curl -fsS "http://$RADDR/v1/stats" | grep -q '"healthy_shards":2'

echo "--- SIGKILL shard 1, assert degraded-but-serving"
kill -9 "$SPID1"
wait "$SPID1" 2>/dev/null || true
SPID1=""
DEGRADED=""
for _ in $(seq 1 50); do
  R=$(curl -sS -d '{"query":"golden gate","k":5}' "http://$RADDR/v1/indexes/movies_desc/search") || R=""
  if echo "$R" | grep -q '"partial":true'; then DEGRADED="$R"; break; fi
  sleep 0.2
done
[ -n "$DEGRADED" ] || { echo "router never served partial results after shard kill" >&2; exit 1; }
echo "$DEGRADED" | grep -q '"hits"'
curl -fsS "http://$RADDR/healthz" | grep -q '"status":"degraded"'

echo "--- restart shard 1 on its old port, assert the router recovers"
SPORT1=${SADDR1##*:}
: >"$SLOG1"
"$BIN" -addr "127.0.0.1:$SPORT1" -movies 500 -shard-index 1 -shard-count 2 >"$SLOG1" 2>&1 &
SPID1=$!
wait_addr "$SLOG1" >/dev/null || { echo "shard 1 never restarted" >&2; exit 1; }
RECOVERED=""
for _ in $(seq 1 50); do
  if curl -fsS "http://$RADDR/healthz" 2>/dev/null | grep -q '"status":"ok"'; then RECOVERED=1; break; fi
  sleep 0.2
done
[ -n "$RECOVERED" ] || { echo "router never recovered after shard restart" >&2; exit 1; }
POST_RECOVERY=$(curl -fsS -d '{"query":"golden gate","k":5}' "http://$RADDR/v1/indexes/movies_desc/search")
echo "$POST_RECOVERY" | grep -q '"partial"' && { echo "recovered cluster still partial" >&2; exit 1; }
[ "$POST_RECOVERY" = "$FULL" ] || {
  echo "post-recovery results diverge from the healthy-cluster results" >&2
  echo "pre:  $FULL" >&2
  echo "post: $POST_RECOVERY" >&2
  exit 1
}

echo "--- routed write reaches the owning shard through the router"
curl -fsS -d '{"ops":[{"op":"update","table":"Statistics","pk":7,"set":{"nVisit":9000}}]}' \
  "http://$RADDR/v1/batch" | grep -q '"applied":1'

echo "--- online index lifecycle through the router under concurrent searches"
SEARCH_FAILS=$(mktemp)
: >"$SEARCH_FAILS"
(
  for _ in $(seq 1 100); do
    curl -fsS -d '{"query":"golden gate","k":5}' \
      "http://$RADDR/v1/indexes/movies_desc/search" >/dev/null 2>&1 || echo fail >>"$SEARCH_FAILS"
  done
) &
STORM_PID=$!
curl -fsS -d '{"name":"movies_desc2","table":"Movies","column":"desc","method":"id","spec":"archive"}' \
  "http://$RADDR/v1/indexes" | grep -q '"name":"movies_desc2"'
curl -fsS -d '{"query":"golden gate","k":5}' \
  "http://$RADDR/v1/indexes/movies_desc2/search" | grep -q '"hits"'
curl -fsS -X DELETE "http://$RADDR/v1/indexes/movies_desc2" | grep -q '"dropped":"movies_desc2"'
CODE=$(curl -s -o /dev/null -w '%{http_code}' -d '{"query":"golden gate"}' \
  "http://$RADDR/v1/indexes/movies_desc2/search")
[ "$CODE" = "404" ]
curl -s -X DELETE "http://$RADDR/v1/indexes/movies_desc2" | grep -q '"code":"not_found"'
wait "$STORM_PID"
[ ! -s "$SEARCH_FAILS" ] || {
  echo "$(wc -l <"$SEARCH_FAILS") concurrent searches failed during the index lifecycle" >&2
  exit 1
}

echo "--- stats reflect the drop and both shards stay healthy"
STATS=$(curl -fsS "http://$RADDR/v1/stats")
echo "$STATS" | grep -q '"healthy_shards":2'
echo "$STATS" | grep -q 'movies_desc'
echo "$STATS" | grep -q 'movies_desc2' && { echo "dropped index still in stats" >&2; exit 1; }

echo "--- graceful shutdown of router and shards"
kill -TERM "$RPID"
wait "$RPID"
RPID=""
grep -q "shutdown complete" "$RLOG"
kill -TERM "$SPID0" "$SPID1"
wait "$SPID0"
wait "$SPID1"
SPID0="" SPID1=""

trap - EXIT
echo "serve smoke OK (including SIGKILL restart, router degradation and online index lifecycle legs)"
