#!/usr/bin/env bash
# Server smoke test: build svrserve, start it on the movies example dataset,
# run a scripted query + batch update + stats scrape over real HTTP, then
# SIGTERM it and assert a clean graceful shutdown (drain + engine close with
# its pin audit).  CI runs this on every push; it also works locally.
set -euo pipefail
cd "$(dirname "$0")/.."

LOG=$(mktemp)
BIN=$(mktemp -d)/svrserve

go build -o "$BIN" ./cmd/svrserve
# Port 0: the kernel picks a free port, so a leaked daemon or a parallel
# job on a shared runner cannot collide; the bound address is parsed from
# the daemon's "serving on http://..." line.
"$BIN" -addr 127.0.0.1:0 -movies 500 >"$LOG" 2>&1 &
PID=$!
cleanup() { kill "$PID" 2>/dev/null || true; cat "$LOG"; }
trap cleanup EXIT

# Wait for the daemon to finish building the dataset and start listening.
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's|^serving on http://\([^ ]*\).*|\1|p' "$LOG")
  if [ -n "$ADDR" ] && curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.2
done
[ -n "$ADDR" ] || { echo "daemon never started listening" >&2; exit 1; }

echo "--- healthz"
curl -fsS "http://$ADDR/healthz" | grep -q '"status":"ok"'

echo "--- search"
curl -fsS -d '{"query":"golden gate","k":5,"load_rows":true}' \
  "http://$ADDR/v1/indexes/movies_desc/search" | grep -q '"hits"'

echo "--- batch update (structured update re-ranks via the score view)"
curl -fsS -d '{"ops":[{"op":"update","table":"Statistics","pk":7,"set":{"nVisit":9000}}]}' \
  "http://$ADDR/v1/batch" | grep -q '"applied":1'

echo "--- row insert through ApplyBatch"
curl -fsS -d '{"rows":[{"rID":900001,"mID":7,"rating":5}]}' \
  "http://$ADDR/v1/tables/Reviews/rows" | grep -q '"inserted":1'

echo "--- stats scrape"
STATS=$(curl -fsS "http://$ADDR/v1/stats")
echo "$STATS" | grep -q '"table_patches"'
echo "$STATS" | grep -q '"endpoints"'
echo "$STATS" | grep -q '"long_list_raw_bytes"'
echo "$STATS" | grep -q '"compression_ratio"'
echo "$STATS" | grep -q '"pages_read"'
# Long lists must actually be compressed: every index with a nonzero raw
# footprint must report ratio > 1 (raw bytes strictly above stored bytes).
echo "$STATS" | python3 -c '
import json, sys
stats = json.load(sys.stdin)
for name, idx in stats["indexes"].items():
    raw, stored = idx["long_list_raw_bytes"], idx["long_list_bytes"]
    if raw > 0 and idx["compression_ratio"] <= 1.0:
        sys.exit(f"{name}: raw {raw} B stored {stored} B — not compressed")
'

echo "--- malformed request gets a clean 400"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -d '{"query":' \
  "http://$ADDR/v1/indexes/movies_desc/search")
[ "$CODE" = "400" ]

echo "--- graceful shutdown (SIGTERM: drain, Engine.Close, pin audit)"
kill -TERM "$PID"
wait "$PID" # non-zero exit (failed drain or pin audit) fails the smoke
grep -q "shutdown complete" "$LOG"

# --- restart leg: durability under kill -9 -----------------------------------
# Serve against a -data file, commit a batch, SIGKILL the daemon mid-flight,
# restart against the same file, and require the committed query results to
# come back byte-identical — the WAL recovery path over real HTTP.
DATA=$(mktemp -d)/smoke.svrdb
LOG2=$(mktemp)

start_durable() {
  "$BIN" -addr 127.0.0.1:0 -movies 500 -data "$DATA" >"$LOG2" 2>&1 &
  PID=$!
  ADDR=""
  for _ in $(seq 1 150); do
    ADDR=$(sed -n 's|^serving on http://\([^ ]*\).*|\1|p' "$LOG2")
    if [ -n "$ADDR" ] && curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.2
  done
  [ -n "$ADDR" ] || { echo "durable daemon never started listening" >&2; cat "$LOG2" >&2; exit 1; }
}

cleanup2() { kill -9 "$PID" 2>/dev/null || true; cat "$LOG2"; }
trap cleanup2 EXIT

echo "--- durable build + committed batch"
start_durable
curl -fsS -d '{"ops":[{"op":"update","table":"Statistics","pk":7,"set":{"nVisit":123456}}]}' \
  "http://$ADDR/v1/batch" | grep -q '"applied":1'
PRE=$(curl -fsS -d '{"query":"golden gate","k":5}' "http://$ADDR/v1/indexes/movies_desc/search")

echo "--- SIGKILL mid-serve"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true

echo "--- restart from the data file, assert committed state intact"
: >"$LOG2"
start_durable
grep -q "recovered" "$LOG2" || { echo "restart rebuilt instead of recovering" >&2; exit 1; }
POST=$(curl -fsS -d '{"query":"golden gate","k":5}' "http://$ADDR/v1/indexes/movies_desc/search")
[ "$PRE" = "$POST" ] || {
  echo "post-restart results diverge from committed pre-kill results" >&2
  echo "pre:  $PRE" >&2
  echo "post: $POST" >&2
  exit 1
}
echo "--- second graceful shutdown closes the durable engine"
kill -TERM "$PID"
wait "$PID"
grep -q "shutdown complete" "$LOG2"

trap - EXIT
echo "serve smoke OK (including SIGKILL restart leg)"
