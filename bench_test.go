// Package svrdb_test holds the top-level testing.B benchmarks, one per table
// and figure of the paper's evaluation.  Each benchmark isolates the core
// operation the corresponding experiment measures (a score update, a top-k
// query, a document insertion, ...) against a pre-built index at a small,
// laptop-friendly scale.
//
// The full parameter sweeps that regenerate the papers' tables row by row —
// including the cold-cache methodology — live in internal/bench and are run
// with cmd/svrbench (-list prints the experiment index); CHANGES.md records
// before/after numbers and ARCHITECTURE.md maps the layers under test.
package svrdb_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"svrdb/internal/bench"
	"svrdb/internal/core"
	"svrdb/internal/index"
	"svrdb/internal/postings"
	"svrdb/internal/relation"
	"svrdb/internal/server"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/workload"
)

// benchScale keeps the shared corpus small enough for `go test -bench=.`.
var benchParams = workload.Params{
	NumDocs:     2000,
	TermsPerDoc: 120,
	VocabSize:   6000,
	TermZipf:    1.0, // see workload.DefaultParams: preserves query selectivity at reduced scale
	ScoreMax:    100000,
	ScoreZipf:   0.75,
	Seed:        1,
}

var (
	corpusOnce  sync.Once
	benchCorpus *workload.Corpus
	benchQs     [][]string
	benchUpds   []workload.ScoreUpdate
)

func sharedCorpus() (*workload.Corpus, [][]string, []workload.ScoreUpdate) {
	corpusOnce.Do(func() {
		benchCorpus = workload.Generate(benchParams)
		benchQs = workload.GenerateQueries(benchCorpus, workload.QueryParams{
			Class: workload.Unselective, TermsPerQuery: 2, NumQueries: 64, Seed: 7,
		})
		up := workload.DefaultUpdateParams()
		up.NumUpdates = 20000
		benchUpds = workload.GenerateUpdates(benchCorpus, up)
	})
	return benchCorpus, benchQs, benchUpds
}

func buildBenchIndex(b *testing.B, kind string, cfg index.Config) index.Method {
	b.Helper()
	corpus, _, _ := sharedCorpus()
	pool := buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), 8192)
	cfg.Pool = pool
	var (
		m   index.Method
		err error
	)
	switch kind {
	case "ID":
		m, err = index.NewID(cfg)
	case "Score":
		m, err = index.NewScore(cfg)
	case "Score-Threshold":
		m, err = index.NewScoreThreshold(cfg)
	case "Chunk":
		m, err = index.NewChunk(cfg)
	case "ID-TermScore":
		m, err = index.NewIDTermScore(cfg)
	case "Chunk-TermScore":
		m, err = index.NewChunkTermScore(cfg)
	default:
		b.Fatalf("unknown method %q", kind)
	}
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Build(corpus, corpus.ScoreFunc()); err != nil {
		b.Fatal(err)
	}
	return m
}

func benchQueries(b *testing.B, m index.Method, k int, disjunctive, withTermScores bool) {
	b.Helper()
	_, queries, _ := sharedCorpus()
	b.ResetTimer()
	postingsScanned := 0
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		res, err := m.TopK(index.Query{Terms: q, K: k, Disjunctive: disjunctive, WithTermScores: withTermScores})
		if err != nil {
			b.Fatal(err)
		}
		postingsScanned += res.PostingsScanned
	}
	b.ReportMetric(float64(postingsScanned)/float64(b.N), "postings/query")
}

func benchUpdates(b *testing.B, m index.Method) {
	b.Helper()
	_, _, updates := sharedCorpus()
	patchesBefore := m.Stats().TablePatches
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := updates[i%len(updates)]
		if err := m.UpdateScore(u.Doc, u.NewScore); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Guard the in-place patch fast path: the metric makes a silent fallback
	// to full leaf rewrites visible in every update benchmark run.
	b.ReportMetric(float64(m.Stats().TablePatches-patchesBefore)/float64(b.N), "patches/op")
}

// BenchmarkTable1_BuildLongLists measures the bulk build that produces the
// long inverted lists whose sizes Table 1 reports; the size is attached as a
// custom metric.
func BenchmarkTable1_BuildLongLists(b *testing.B) {
	for _, kind := range []string{"ID", "Score-Threshold", "Chunk", "ID-TermScore", "Chunk-TermScore"} {
		b.Run(kind, func(b *testing.B) {
			var size uint64
			for i := 0; i < b.N; i++ {
				m := buildBenchIndex(b, kind, index.Config{})
				size = m.Stats().LongListBytes
			}
			b.ReportMetric(float64(size)/(1024*1024), "MB")
		})
	}
}

// BenchmarkTable2_ChunkRatio measures the two sides of the Table 2 tradeoff
// (score-update cost and query cost) for several chunk ratios.
func BenchmarkTable2_ChunkRatio(b *testing.B) {
	for _, ratio := range []float64{164.84, 21.48, 6.12, 1.56} {
		m := buildBenchIndex(b, "Chunk", index.Config{ChunkRatio: ratio, MinChunkSize: 20})
		b.Run(fmt.Sprintf("update/ratio=%.2f", ratio), func(b *testing.B) { benchUpdates(b, m) })
		b.Run(fmt.Sprintf("query/ratio=%.2f", ratio), func(b *testing.B) { benchQueries(b, m, 10, false, false) })
	}
}

// BenchmarkFigure7_ScoreUpdate measures the per-update cost of every
// SVR-only method (the update side of Figure 7).
func BenchmarkFigure7_ScoreUpdate(b *testing.B) {
	for _, kind := range []string{"ID", "Score", "Score-Threshold", "Chunk"} {
		b.Run(kind, func(b *testing.B) {
			m := buildBenchIndex(b, kind, index.Config{MinChunkSize: 20})
			benchUpdates(b, m)
		})
	}
}

// BenchmarkFigure7_Query measures the query cost of every SVR-only method
// after a burst of score updates (the query side of Figure 7).
func BenchmarkFigure7_Query(b *testing.B) {
	_, _, updates := sharedCorpus()
	for _, kind := range []string{"ID", "Score-Threshold", "Chunk"} {
		b.Run(kind, func(b *testing.B) {
			m := buildBenchIndex(b, kind, index.Config{MinChunkSize: 20})
			for _, u := range updates[:4000] {
				if err := m.UpdateScore(u.Doc, u.NewScore); err != nil {
					b.Fatal(err)
				}
			}
			benchQueries(b, m, 10, false, false)
		})
	}
}

// BenchmarkFigure8_VaryK measures query cost as k grows for the ID and Chunk
// methods (Figure 8).
func BenchmarkFigure8_VaryK(b *testing.B) {
	for _, kind := range []string{"ID", "Score-Threshold", "Chunk"} {
		m := buildBenchIndex(b, kind, index.Config{MinChunkSize: 20})
		for _, k := range []int{1, 10, 100, 1000} {
			b.Run(fmt.Sprintf("%s/k=%d", kind, k), func(b *testing.B) { benchQueries(b, m, k, false, false) })
		}
	}
}

// BenchmarkStepSweep_ChunkUpdate measures the update cost of the Chunk
// method under increasing mean update steps (§5.3.4); larger steps push more
// documents across two chunk boundaries and hence into the short lists.
func BenchmarkStepSweep_ChunkUpdate(b *testing.B) {
	corpus, _, _ := sharedCorpus()
	for _, step := range []float64{100, 1000, 10000} {
		up := workload.DefaultUpdateParams()
		up.NumUpdates = 20000
		up.MeanStep = step
		up.Seed = int64(step)
		trace := workload.GenerateUpdates(corpus, up)
		b.Run(fmt.Sprintf("step=%.0f", step), func(b *testing.B) {
			m := buildBenchIndex(b, "Chunk", index.Config{MinChunkSize: 20})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u := trace[i%len(trace)]
				if err := m.UpdateScore(u.Doc, u.NewScore); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// updateBatchSize is the batch size the batched write benchmarks use; one
// ApplyUpdates call per this many trace entries.
const updateBatchSize = 256

// BenchmarkUpdateThroughput compares the write pipeline's two shapes on the
// same score-update trace: the one-at-a-time UpdateScore loop against
// batched ApplyUpdates.  The per-op times divide out to throughput; the
// batched path amortizes B+-tree descents and leaf rewrites across each
// batch.
func BenchmarkUpdateThroughput(b *testing.B) {
	_, _, updates := sharedCorpus()
	for _, kind := range []string{"ID", "Score-Threshold", "Chunk", "Chunk-TermScore"} {
		b.Run(kind+"/loop", func(b *testing.B) {
			m := buildBenchIndex(b, kind, index.Config{MinChunkSize: 20})
			benchUpdates(b, m)
		})
		b.Run(kind+"/batch", func(b *testing.B) {
			m := buildBenchIndex(b, kind, index.Config{MinChunkSize: 20})
			batch := make([]index.Update, 0, updateBatchSize)
			b.ResetTimer()
			for n := 0; n < b.N; {
				sz := updateBatchSize
				if n+sz > b.N {
					sz = b.N - n
				}
				batch = batch[:0]
				for j := 0; j < sz; j++ {
					u := updates[(n+j)%len(updates)]
					batch = append(batch, index.Update{Op: index.ScoreOp, Doc: u.Doc, Score: u.NewScore})
				}
				if err := m.ApplyUpdates(batch); err != nil {
					b.Fatal(err)
				}
				n += sz
			}
		})
	}
}

// BenchmarkConcurrentQuery measures the Figure 7 query mix served from 1,
// 2, 4 and GOMAXPROCS concurrent goroutines against one shared index.  The
// reported ns/op is aggregate wall-clock per query, so on a multi-core
// machine it should drop near-linearly as workers grow (>=3x aggregate QPS
// at 4 workers is the acceptance bar); on one core it stays flat, which
// bounds the coordination overhead of the goroutine-safe read path.  The
// qps metric makes the scaling explicit.  The worker set and the worker
// loop are shared with `svrbench -experiment concurrent`
// (bench.WorkerCounts / bench.RunConcurrentQueries) so the two report the
// same thing.
func BenchmarkConcurrentQuery(b *testing.B) {
	_, queries, updates := sharedCorpus()
	for _, kind := range []string{"ID", "Score-Threshold", "Chunk"} {
		m := buildBenchIndex(b, kind, index.Config{MinChunkSize: 20})
		for _, u := range updates[:4000] {
			if err := m.UpdateScore(u.Doc, u.NewScore); err != nil {
				b.Fatal(err)
			}
		}
		for _, workers := range bench.WorkerCounts() {
			b.Run(fmt.Sprintf("%s/workers=%d", kind, workers), func(b *testing.B) {
				b.ResetTimer()
				if _, err := bench.RunConcurrentQueries(bench.MethodSearcher(m), queries, 10, workers, b.N); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
			})
		}
	}
}

// BenchmarkConcurrentSearch is BenchmarkConcurrentQuery one layer up: the
// queries go through core.TextIndex.Search on a real engine, so the index
// RW-lock coordination this PR added (and the search-side tokenization and
// close-fence check) is part of the measured cost.  Comparing its scaling
// against BenchmarkConcurrentQuery's isolates what the lock layer costs —
// a regression that serializes readers shows up here and not there.
func BenchmarkConcurrentSearch(b *testing.B) {
	db := relation.NewDB(buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), 8192))
	if _, err := workload.BuildArchiveDB(db, workload.DefaultArchiveParams()); err != nil {
		b.Fatal(err)
	}
	engine := core.NewEngine(db, core.Options{})
	idx, err := engine.CreateTextIndex("m", "Movies", "desc", core.IndexOptions{
		Method: core.MethodChunk,
		Spec:   workload.ArchiveSpec(),
	})
	if err != nil {
		b.Fatal(err)
	}
	queries := [][]string{{"golden", "gate"}, {"silent", "river"}, {"pacific", "harbor"}, {"midnight", "fog"}}
	search := func(terms []string, k int) error {
		_, err := idx.Search(core.SearchRequest{Query: strings.Join(terms, " "), K: k})
		return err
	}
	for _, workers := range bench.WorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ResetTimer()
			if _, err := bench.RunConcurrentQueries(search, queries, 10, workers, b.N); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
		})
	}
	if err := engine.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkServeQuery is BenchmarkConcurrentSearch one more layer up: the
// same archive dataset and query pool, but every query travels the full
// serving stack — loopback TCP, JSON codec, route mux, metrics — via the
// internal/server load generator.  Comparing its workers=1 line against
// BenchmarkConcurrentSearch/workers=1 is the measured HTTP serving
// overhead; svrbench -experiment serve reports the same comparison as a
// table.
func BenchmarkServeQuery(b *testing.B) {
	db := relation.NewDB(buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), 8192))
	if _, err := workload.BuildArchiveDB(db, workload.DefaultArchiveParams()); err != nil {
		b.Fatal(err)
	}
	engine := core.NewEngine(db, core.Options{})
	if _, err := engine.CreateTextIndex("m", "Movies", "desc", core.IndexOptions{
		Method: core.MethodChunk,
		Spec:   workload.ArchiveSpec(),
	}); err != nil {
		b.Fatal(err)
	}
	srv := server.New(engine, server.Options{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	baseURL := "http://" + addr
	queries := [][]string{{"golden", "gate"}, {"silent", "river"}, {"pacific", "harbor"}, {"midnight", "fog"}}
	for _, workers := range bench.WorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			client := server.NewLoadClient(workers)
			// One warm pass establishes the keep-alive connections.
			if _, err := server.RunSearchLoad(client, baseURL, "m", queries, 10, workers, workers); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			res, err := server.RunSearchLoad(client, baseURL, "m", queries, 10, workers, b.N)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(res.QPS, "qps")
			b.ReportMetric(float64(res.P99.Nanoseconds())/1e6, "p99-ms")
		})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFigure9_CombinedScores measures combined SVR+TF-IDF queries for
// the two TermScore methods (Figure 9).
func BenchmarkFigure9_CombinedScores(b *testing.B) {
	for _, kind := range []string{"ID-TermScore", "Chunk-TermScore"} {
		b.Run(kind, func(b *testing.B) {
			m := buildBenchIndex(b, kind, index.Config{MinChunkSize: 20})
			benchQueries(b, m, 10, false, true)
		})
	}
}

// BenchmarkFigure10_Disjunctive measures disjunctive (OR) queries per method
// (Figure 10).
func BenchmarkFigure10_Disjunctive(b *testing.B) {
	for _, kind := range []string{"ID", "Score-Threshold", "Chunk"} {
		b.Run(kind, func(b *testing.B) {
			m := buildBenchIndex(b, kind, index.Config{MinChunkSize: 20})
			benchQueries(b, m, 10, true, false)
		})
	}
}

// BenchmarkTable3_Insertion measures incremental document insertion into the
// Chunk method (Table 3).
func BenchmarkTable3_Insertion(b *testing.B) {
	corpus, _, _ := sharedCorpus()
	m := buildBenchIndex(b, "Chunk", index.Config{MinChunkSize: 20})
	// Fresh documents reuse the corpus token streams under new IDs.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := workload.DocID(i%corpus.NumDocs() + 1)
		tokens, err := corpus.Tokens(src)
		if err != nil {
			b.Fatal(err)
		}
		doc := postings.DocID(corpus.NumDocs() + i + 1)
		if err := m.InsertDocument(doc, tokens, corpus.Score(src)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThresholdRatio_Update measures Score-Threshold update cost across
// threshold ratios (§5.3.1).
func BenchmarkThresholdRatio_Update(b *testing.B) {
	for _, ratio := range []float64{100, 11.24, 2, 1.2} {
		b.Run(fmt.Sprintf("ratio=%.2f", ratio), func(b *testing.B) {
			m := buildBenchIndex(b, "Score-Threshold", index.Config{ThresholdRatio: ratio})
			benchUpdates(b, m)
		})
	}
}

// BenchmarkAblation_FancyListQuery measures Chunk-TermScore combined queries
// for different fancy-list lengths (design-choice ablation).
func BenchmarkAblation_FancyListQuery(b *testing.B) {
	for _, n := range []int{4, 32, 256} {
		b.Run(fmt.Sprintf("fancy=%d", n), func(b *testing.B) {
			m := buildBenchIndex(b, "Chunk-TermScore", index.Config{FancyListSize: n, MinChunkSize: 20})
			benchQueries(b, m, 10, false, true)
		})
	}
}
