package svrdb_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDocsGate is the documentation gate: every package under internal/
// must carry a godoc package comment (by convention in a doc.go file, but
// any non-test file satisfies go/doc), so `go doc svrdb/internal/<pkg>`
// always gives a real overview of the layer.  A new package added without
// one fails tier-1, not just review.
func TestDocsGate(t *testing.T) {
	var pkgDirs []string
	err := filepath.WalkDir("internal", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(pkgDirs) == 0 || pkgDirs[len(pkgDirs)-1] != dir {
				pkgDirs = append(pkgDirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgDirs) < 10 {
		t.Fatalf("docs gate walked only %d package dirs under internal/ — the walk is broken", len(pkgDirs))
	}

	for _, dir := range pkgDirs {
		if !packageHasDoc(t, dir) {
			t.Errorf("package %q has no package comment: add a doc.go with a `// Package <name> ...` overview (see ARCHITECTURE.md)", dir)
		}
	}
}

// packageHasDoc reports whether any non-test Go file in dir carries a
// package doc comment.
func packageHasDoc(t *testing.T, dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Fatalf("parsing %s/%s: %v", dir, name, err)
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true
		}
	}
	return false
}
